"""Tests for §3.4 N-version execution and §5 hot-standby clones."""

import pytest

from repro.apps import LearningSwitch
from repro.controller.monolithic import MonolithicRuntime
from repro.core.diversity import HotStandbyApp, NVersionApp
from repro.core.runtime import LegoSDNRuntime
from repro.faults import crash_on, Bug, BugKind, FaultyApp
from repro.network.net import Network
from repro.network.topology import linear_topology
from repro.workloads.traffic import inject_marker_packet


def build(app, switches=2):
    net = Network(linear_topology(switches, 1), seed=0)
    runtime = LegoSDNRuntime(net.controller)
    runtime.launch_app(app)
    net.start()
    net.run_for(1.0)
    return net, runtime


class TestNVersion:
    def test_needs_two_versions(self):
        with pytest.raises(ValueError):
            NVersionApp([LearningSwitch()])

    def test_agreeing_versions_serve_traffic(self):
        app = NVersionApp([LearningSwitch(), LearningSwitch(),
                           LearningSwitch()])
        net, runtime = build(app)
        assert net.reachability() == 1.0
        assert app.votes_taken > 0
        assert app.disagreements == 0

    def test_crashed_minority_version_is_masked(self):
        buggy = crash_on(LearningSwitch(), payload_marker="BOOM")
        app = NVersionApp([LearningSwitch(), buggy, LearningSwitch()])
        net, runtime = build(app)
        inject_marker_packet(net, "h1", "h2", "BOOM")
        net.run_for(1.5)
        # the wrapper app never crashed; the version did
        assert runtime.stats()[app.name]["crashes"] == 0
        assert sum(app.version_crashes.values()) >= 1
        assert net.reachability(wait=1.0) == 1.0

    def test_divergent_minority_outvoted(self):
        from repro.apps import Hub

        # A hub floods instead of installing rules: its ballot differs.
        app = NVersionApp([LearningSwitch(), LearningSwitch(), Hub()],
                          name="mixed")
        net, runtime = build(app)
        net.ping("h1", "h2")
        net.run_for(0.5)
        assert app.disagreements > 0
        # majority (learning switch) behaviour won: flows installed
        assert net.total_flow_entries() > 0

    def test_no_quorum_emits_nothing(self):
        from repro.apps import Hub, Flooder

        app = NVersionApp([LearningSwitch(), Hub()], quorum=2, name="split")
        emitted = []

        class CaptureAPI:
            def emit(self, dpid, msg):
                emitted.append(msg)

            def log(self, text):
                pass

            def topology(self):
                from repro.controller.api import TopoView

                return TopoView()

            def host_location(self, mac):
                return None

        from repro.openflow.messages import PacketIn
        from repro.network.packet import tcp_packet

        app.startup(CaptureAPI())
        app.handle(PacketIn(dpid=1, in_port=1,
                            packet=tcp_packet("a", "b", "1", "2")))
        # LS floods (PacketOut) and Hub floods (PacketOut) -- both flood
        # unknown dst, so they may agree; craft a known-dst case instead:
        emitted.clear()
        # teach only the learning switch
        app.versions[0].mac_tables[1] = {"b": 2}
        app.handle(PacketIn(dpid=1, in_port=1,
                            packet=tcp_packet("a", "b", "1", "2")))
        # versions disagree (install+forward vs flood): quorum 2 unreachable
        assert emitted == []
        assert app.disagreements >= 1

    def test_state_roundtrip(self):
        app = NVersionApp([LearningSwitch(), LearningSwitch()])
        state = app.get_state()
        app.votes_taken = 99
        app.set_state(state)
        assert app.votes_taken == 0


class TestHotStandby:
    def test_primary_output_used(self):
        app = HotStandbyApp(LearningSwitch(), LearningSwitch())
        net, runtime = build(app)
        assert net.reachability() == 1.0
        assert app.switch_overs == 0

    def test_switch_over_on_primary_crash(self):
        """§5: non-deterministic bug -- the clone survives the event."""
        nondet_bug = Bug("nd", BugKind.CRASH, payload_marker="MAYBE",
                         deterministic=False, probability=1.0)
        primary = FaultyApp(LearningSwitch(), [nondet_bug], seed=1)
        clone = LearningSwitch()
        app = HotStandbyApp(primary, clone, name="standby")
        net, runtime = build(app)
        inject_marker_packet(net, "h1", "h2", "MAYBE")
        net.run_for(1.5)
        assert app.switch_overs >= 1
        assert not app.primary_dead  # clone was promoted
        assert runtime.stats()["standby"]["crashes"] == 0
        assert net.reachability(wait=1.0) == 1.0

    def test_subscriptions_union(self):
        from repro.apps import Flooder

        app = HotStandbyApp(LearningSwitch(), Flooder())
        assert set(app.subscriptions) >= {"PacketIn", "SwitchJoin"}

    def test_state_roundtrip(self):
        app = HotStandbyApp(LearningSwitch(), LearningSwitch())
        state = app.get_state()
        app.switch_overs = 5
        app.set_state(state)
        assert app.switch_overs == 0
