"""Exposition: turn collected telemetry into standard formats.

Two consumers, two formats:

- **Prometheus text** (:func:`prometheus_text`) for scrape-style
  monitoring: counters become ``*_total`` counters, latency recorders
  become summaries (quantiles + sum + count) with an optional
  histogram rendering for dashboard heat-maps;
- **JSON** (:func:`trace_dict` / :func:`trace_json`) for the ``repro
  trace`` CLI and offline analysis: the full span list, the flight
  recorder contents, and a metrics snapshot in one document.
"""

from __future__ import annotations

import json
import math
import re
from typing import List, Optional, Sequence

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Default latency histogram upper bounds, in seconds (1 ms .. 100 ms).
DEFAULT_BUCKETS = (0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1)


def sanitize_metric_name(name: str) -> str:
    """Fold an internal metric name into the Prometheus charset."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _label_set(base_labels, extra=None) -> str:
    """Render a Prometheus label brace set (empty string when bare)."""
    items = list(base_labels)
    if extra:
        items.extend(extra)
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in items) + "}"


def bytes_per_event(metrics) -> Optional[float]:
    """Wire payload bytes per completed app event, or None.

    Derived from the ``channel.bytes_sent`` counter (every payload a
    proxy, stub, or replication endpoint handed to its channel) over
    the ``span.appvisor.event`` recorder's count -- the serialization
    efficiency number the E19 codec A/B reports.
    """
    sent = metrics.counters.get("channel.bytes_sent", 0)
    recorder = metrics.recorders.get("span.appvisor.event")
    if recorder is None or recorder.count == 0:
        return None
    return sent / recorder.count


def prometheus_text(metrics, prefix: str = "repro",
                    buckets: Sequence[float] = DEFAULT_BUCKETS,
                    labels: Optional[dict] = None) -> str:
    """Render a MetricsCollector in Prometheus text exposition format.

    ``labels`` (e.g. ``{"shard": "2"}``) is stamped onto every sample
    so several collectors -- one per shard -- can be concatenated into
    a single scrape body without their series colliding.  The bare
    (label-free) rendering is byte-identical to what it was before the
    parameter existed.
    """
    base_labels = sorted((labels or {}).items())
    lines: List[str] = []
    for name, value in sorted(metrics.counters.items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{_label_set(base_labels)} {value}")
    for name, recorder in sorted(metrics.recorders.items()):
        base = f"{prefix}_{sanitize_metric_name(name)}_seconds"
        lines.append(f"# TYPE {base} summary")
        for quantile in (0.5, 0.95, 0.99):
            label_set = _label_set(base_labels,
                                   [("quantile", str(quantile))])
            lines.append(
                f"{base}{label_set} "
                f"{_format_value(recorder.percentile(quantile * 100))}"
            )
        lines.append(f"{base}_sum{_label_set(base_labels)} "
                     f"{_format_value(recorder.sum)}")
        lines.append(f"{base}_count{_label_set(base_labels)} "
                     f"{recorder.count}")
        hist = f"{base}_hist"
        lines.append(f"# TYPE {hist} histogram")
        for bound, cumulative in recorder.histogram(buckets):
            label_set = _label_set(base_labels,
                                   [("le", _format_value(bound))])
            lines.append(f"{hist}_bucket{label_set} {cumulative}")
        lines.append(f"{hist}_sum{_label_set(base_labels)} "
                     f"{_format_value(recorder.sum)}")
        lines.append(f"{hist}_count{_label_set(base_labels)} "
                     f"{recorder.count}")
    for name, value in sorted(getattr(metrics, "gauges", {}).items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{_label_set(base_labels)} "
                     f"{_format_value(value)}")
    derived = bytes_per_event(metrics)
    if derived is not None:
        metric = f"{prefix}_channel_bytes_per_event"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{_label_set(base_labels)} "
                     f"{_format_value(derived)}")
    return "\n".join(lines) + "\n"


def trace_dict(telemetry) -> dict:
    """The whole telemetry state as one JSON-safe document."""
    doc = {
        "enabled": telemetry.enabled,
        "spans": telemetry.tracer.to_dicts(),
        "flight_recorder": telemetry.recorder.dump(),
        "metrics": telemetry.metrics.snapshot(),
    }
    if telemetry.enabled:
        doc["dropped_spans"] = getattr(telemetry.tracer, "dropped", 0)
        from repro.telemetry.causal import analyze

        analysis = analyze(doc["spans"])
        doc["critical_path"] = {
            "traces": analysis.trace_count,
            "total_time": analysis.total_time,
            "attribution": {
                name: entry for name, entry in analysis.top(20)
            },
        }
    return doc


def trace_json(telemetry, indent: Optional[int] = 2) -> str:
    return json.dumps(trace_dict(telemetry), indent=indent)


def write_trace(path: str, telemetry, fmt: str = "json") -> None:
    """Write the trace to ``path`` as ``json`` or ``prom`` text."""
    if fmt == "prom":
        text = prometheus_text(telemetry.metrics)
    elif fmt == "json":
        text = trace_json(telemetry)
    else:
        raise ValueError(f"unknown trace format {fmt!r}")
    with open(path, "w") as fh:
        fh.write(text)
