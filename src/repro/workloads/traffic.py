"""Traffic generation.

Deterministic packet workloads over a running network: fixed-rate
host-pair traffic (round-robin or seeded-random pair selection) and
single crafted packets carrying a payload marker -- the mechanism the
fault experiments use to trigger a specific bug from the corpus at a
chosen moment.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.network.packet import tcp_packet, udp_packet


class TrafficWorkload:
    """Inject packets between host pairs at a fixed rate."""

    def __init__(self, net, rate: float = 100.0,
                 pairs: Optional[List[Tuple[str, str]]] = None,
                 kind: str = "tcp", packet_size: int = 512,
                 selection: str = "round-robin", seed: int = 0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if selection not in ("round-robin", "random"):
            raise ValueError("selection must be 'round-robin' or 'random'")
        self.net = net
        self.rate = rate
        self.kind = kind
        self.packet_size = packet_size
        self.selection = selection
        self.rng = random.Random(seed)
        names = [spec.name for spec in net.topology.hosts]
        self.pairs = pairs or [
            (a, b) for a in names for b in names if a != b
        ]
        if not self.pairs:
            raise ValueError("no host pairs to generate traffic between")
        self.sent = 0
        self._next_pair = 0
        self._port_seq = 10000

    def _pick_pair(self) -> Tuple[str, str]:
        if self.selection == "random":
            return self.rng.choice(self.pairs)
        pair = self.pairs[self._next_pair % len(self.pairs)]
        self._next_pair += 1
        return pair

    def inject_one(self) -> None:
        """Send one packet between the next pair."""
        src_name, dst_name = self._pick_pair()
        src = self.net.hosts[src_name]
        dst = self.net.hosts[dst_name]
        self._port_seq += 1
        builder = tcp_packet if self.kind == "tcp" else udp_packet
        src.send(builder(
            src.mac, dst.mac, src.ip, dst.ip,
            src_port=self._port_seq, dst_port=80,
            size=self.packet_size,
        ))
        self.sent += 1

    def start(self, duration: float) -> int:
        """Schedule ``duration * rate`` injections; returns the count.

        Injections are spread evenly, starting one interval from now;
        the caller still has to run the simulator.
        """
        count = int(duration * self.rate)
        interval = 1.0 / self.rate
        for i in range(count):
            self.net.sim.schedule((i + 1) * interval, self.inject_one)
        return count


def inject_marker_packet(net, src_name: str, dst_name: str,
                         marker: str, size: int = 64) -> None:
    """Send one TCP packet whose payload carries a bug-trigger marker."""
    src = net.hosts[src_name]
    dst = net.hosts[dst_name]
    packet = tcp_packet(src.mac, dst.mac, src.ip, dst.ip,
                        src_port=31337, dst_port=80, size=size,
                        payload=marker)
    src.send(packet)
