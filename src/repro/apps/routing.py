"""ShortestPathRouting: a RouteFlow-style routing application.

Computes shortest paths over the discovered topology and installs a
*multi-switch* rule set per destination -- a network-wide policy in
the paper's sense (§3.2: "Network policies often span multiple
devices"), which makes this app the primary workload for the NetLog
transaction experiments: a crash mid-installation leaves orphan rules
on some switches unless the runtime rolls the whole policy back.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.apps.base import SDNApp
from repro.openflow.actions import Flood, Output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand, PacketOut


class ShortestPathRouting(SDNApp):
    """Destination-MAC routing along discovered shortest paths."""

    name = "routing"
    subscriptions = ("PacketIn", "LinkRemoved", "SwitchLeave")

    PRIORITY = 200
    IDLE_TIMEOUT = 30.0

    def __init__(self, name=None):
        super().__init__(name)
        # (ingress dpid, dst_mac) -> list of (dpid, match) rules for
        # that path.  Keyed per ingress switch (as RouteFlow routes
        # per-VM): traffic entering anywhere gets a full path.
        self.installed_routes: Dict[Tuple[int, str],
                                    List[Tuple[int, Match]]] = {}
        self.paths_installed = 0
        self.floods = 0
        self.enable_dirty_tracking()

    # -- packet handling ----------------------------------------------

    def on_packet_in(self, event):
        packet = event.packet
        if packet.is_broadcast():
            self._flood(event)
            return
        destination = self.api.host_location(packet.eth_dst)
        if destination is None:
            self._flood(event)
            return
        if (event.dpid, packet.eth_dst) not in self.installed_routes:
            if not self._install_path(event.dpid, packet.eth_dst, destination):
                self._flood(event)
                return
        # Forward the triggering packet along its first hop.
        self._forward_packet(event, destination)

    def _flood(self, event):
        self.floods += 1
        self.mark_dirty("floods")
        self.api.emit(event.dpid, self.packet_out_for(event, (Flood(),)))

    def _install_path(self, src_dpid: int, dst_mac: str, destination) -> bool:
        """Install dst-MAC rules on every switch along the path.

        Returns False when the topology view offers no path (e.g.
        discovery has not converged yet).
        """
        topo = self.api.topology()
        path = topo.shortest_path(src_dpid, destination.dpid)
        if path is None:
            return False
        rules: List[Tuple[int, Match]] = []
        match = Match(eth_dst=dst_mac)
        for here, nxt in zip(path, path[1:]):
            port = topo.egress_port(here, nxt)
            if port is None:
                return False
            self.api.emit(
                here,
                FlowMod(match=match, command=FlowModCommand.ADD,
                        priority=self.PRIORITY, actions=(Output(port),),
                        idle_timeout=self.IDLE_TIMEOUT),
            )
            rules.append((here, match))
        # Last hop: deliver to the host port.
        self.api.emit(
            destination.dpid,
            FlowMod(match=match, command=FlowModCommand.ADD,
                    priority=self.PRIORITY,
                    actions=(Output(destination.port),),
                    idle_timeout=self.IDLE_TIMEOUT),
        )
        rules.append((destination.dpid, match))
        self.installed_routes[(src_dpid, dst_mac)] = rules
        self.mark_dirty("installed_routes")
        self.paths_installed += 1
        self.mark_dirty("paths_installed")
        return True

    def _forward_packet(self, event, destination) -> None:
        """PacketOut the triggering packet toward its destination."""
        if event.dpid == destination.dpid:
            out_port = destination.port
        else:
            topo = self.api.topology()
            path = topo.shortest_path(event.dpid, destination.dpid)
            if path is None or len(path) < 2:
                return
            out_port = topo.egress_port(path[0], path[1])
            if out_port is None:
                return
        self.api.emit(event.dpid,
                      self.packet_out_for(event, (Output(out_port),)))

    # -- topology changes ---------------------------------------------------

    def on_link_removed(self, event):
        """Tear down routes that crossed the dead link.

        Both endpoint switches are still alive, so their stale rules
        must be deleted explicitly -- only their shared link died.
        """
        self._invalidate_routes({event.dpid_a, event.dpid_b},
                                dead_dpids=frozenset())

    def on_switch_leave(self, event):
        self._invalidate_routes({event.dpid}, dead_dpids={event.dpid})

    def _invalidate_routes(self, dpids, dead_dpids=frozenset()) -> None:
        """Remove routes touching ``dpids``.

        ``dead_dpids`` are switches that are gone: their tables were
        wiped with them, so no delete needs to be (or can be) sent.
        """
        for key in list(self.installed_routes):
            rules = self.installed_routes[key]
            if not any(dpid in dpids for dpid, _ in rules):
                continue
            for dpid, match in rules:
                if dpid in dead_dpids:
                    continue
                self.api.emit(
                    dpid,
                    FlowMod(match=match, command=FlowModCommand.DELETE,
                            priority=self.PRIORITY),
                )
            del self.installed_routes[key]
            self.mark_dirty("installed_routes")
