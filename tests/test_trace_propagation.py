"""Trace-context propagation, causal analysis, and the health watchdog.

The observability contract (PR 5): every control-loop event gets one
trace id at controller ingestion and that id -- never a fresh one --
rides the RPC frames, NetLog transactions, retransmissions, and
recovery spans the event causes.  These tests attack the contract the
same way E17 attacks delivery: a 30% loss / 10% dup / 10% reorder
chaos profile on the proxy<->stub channel, then an audit that the
span stream still tells one coherent causal story per event.
"""

import pytest

from repro.apps import LearningSwitch
from repro.core.runtime import LegoSDNRuntime
from repro.faults import crash_on
from repro.faults.netfaults import ChaosProfile
from repro.network.net import Network
from repro.network.simulator import Simulator
from repro.network.topology import linear_topology
from repro.telemetry import HealthWatchdog, Telemetry
from repro.telemetry.causal import (
    analyze,
    build_trace_tree,
    critical_path,
    group_by_trace,
    trace_summaries,
)
from repro.workloads import TrafficWorkload
from repro.workloads.traffic import inject_marker_packet

LOSS = 0.3
DUPLICATE = 0.1
REORDER = 0.1
RETRY_BUDGET = 12


def _chaotic_deployment(seed=0, loss=LOSS, duration=4.0):
    """E17-style adverse-network run with tracing on."""
    telemetry = Telemetry(enabled=True)
    profile = ChaosProfile(seed=seed, loss=loss, duplicate=DUPLICATE,
                           reorder=REORDER, jitter=0.0005)
    net = Network(linear_topology(4, 1), seed=seed, telemetry=telemetry)
    runtime = LegoSDNRuntime(net.controller,
                             channel_retry_budget=RETRY_BUDGET,
                             chaos=lambda name: profile)
    runtime.launch_app(LearningSwitch())
    net.start()
    net.run_for(1.0)
    TrafficWorkload(net, rate=50.0, seed=seed,
                    selection="random").start(duration * 0.7)
    net.run_for(duration)
    return telemetry, net, runtime


class TestChaosPropagation:
    """The satellite contract: one trace id per delivered event, and
    retransmits reuse the cause's id rather than minting fresh ones."""

    @pytest.fixture(scope="class")
    def chaotic(self):
        return _chaotic_deployment()

    def test_chaos_actually_exercised_retransmit_path(self, chaotic):
        telemetry, _, _ = chaotic
        assert telemetry.metrics.counters.get("channel.retransmits", 0) > 0
        retx = list(telemetry.tracer.spans_named("appvisor.rpc.retransmit"))
        assert retx, "30% loss must produce retransmit spans"

    def test_every_delivered_event_has_exactly_one_trace_id(self, chaotic):
        telemetry, _, _ = chaotic
        events = list(telemetry.tracer.spans_named("appvisor.event"))
        assert events
        by_key = {}
        for span in events:
            assert span.trace_id, "delivered event span missing trace id"
            key = (span.tags["app"], span.tags["seq"])
            by_key.setdefault(key, set()).add(span.trace_id)
        for key, ids in by_key.items():
            assert len(ids) == 1, (
                f"event {key} carries {len(ids)} trace ids: {ids}")

    #: Frame types that carry an event's trace context (control frames
    #: like Register/Hello legitimately have none).
    EVENT_FRAMES = {"EventDeliver", "EventComplete", "AppOutput",
                    "CrashReport", "RestoreCommand", "DeepRestoreCommand",
                    "RestoreAck"}

    def test_retransmits_never_mint_fresh_trace_ids(self, chaotic):
        telemetry, _, _ = chaotic
        # The ids legitimately in circulation: controller ingestion
        # (controller.dispatch) plus proxy-minted register joins, both
        # of which surface on the event/txn spans they cause.
        minted = set()
        for name in ("controller.dispatch", "appvisor.event", "netlog.txn"):
            for span in telemetry.tracer.spans_named(name):
                if span.trace_id:
                    minted.add(span.trace_id)
        retx = list(telemetry.tracer.spans_named("appvisor.rpc.retransmit"))
        assert retx
        traced = 0
        for span in retx:
            kinds = set(span.tags["frames"].split(","))
            if kinds & self.EVENT_FRAMES:
                assert span.trace_id, (
                    f"retransmitted {kinds} lost its trace context")
            if span.trace_id:
                traced += 1
                assert span.trace_id in minted, (
                    f"retransmit minted fresh trace id {span.trace_id}")
        assert traced > 0, "no event-bearing retransmits observed"

    def test_duplicates_do_not_split_traces(self, chaotic):
        """Dup delivery (10%) must not fork an event into two traces:
        every netlog.txn shares its trace id with some event span."""
        telemetry, _, _ = chaotic
        event_ids = {s.trace_id
                     for s in telemetry.tracer.spans_named("appvisor.event")}
        txns = [s for s in telemetry.tracer.spans_named("netlog.txn")
                if s.trace_id]
        assert txns
        foreign = [s.trace_id for s in txns if s.trace_id not in event_ids]
        assert not foreign, f"txn trace ids with no causing event: {foreign}"

    def test_checkpoint_spans_inherit_event_trace(self, chaotic):
        telemetry, _, _ = chaotic
        event_ids = {s.trace_id
                     for s in telemetry.tracer.spans_named("appvisor.event")}
        ckpts = [s for s in telemetry.tracer.spans_named("appvisor.checkpoint")
                 if s.trace_id]
        assert ckpts
        assert all(s.trace_id in event_ids for s in ckpts)


class TestRecoveryTracePropagation:
    def test_recovery_chain_shares_offending_events_trace(self):
        telemetry = Telemetry(enabled=True)
        net = Network(linear_topology(3, 1), seed=0, telemetry=telemetry)
        runtime = LegoSDNRuntime(net.controller)
        runtime.launch_app(crash_on(LearningSwitch(),
                                    payload_marker="BOOM"))
        net.start()
        net.run_for(1.5)
        net.reachability()
        net.run_for(LearningSwitch.IDLE_TIMEOUT + 1.0)
        hosts = sorted(net.hosts)
        inject_marker_packet(net, hosts[0], hosts[-1], "BOOM")
        net.run_for(2.0)
        assert runtime.total_recoveries() == 1
        recovery, = telemetry.tracer.spans_named("crashpad.recovery")
        assert recovery.trace_id, "recovery span must carry a trace id"
        rollbacks = [s for s in telemetry.tracer.spans_named("netlog.txn")
                     if s.tags.get("outcome") == "rollback"]
        assert rollbacks
        # The recovery is attributed to the event whose transaction
        # rolled back -- same trace id end to end.
        assert recovery.trace_id in {s.trace_id for s in rollbacks}


class TestCausalTree:
    def _span(self, sid, name, start, end, parent=None, trace=7, **tags):
        return {"span_id": sid, "name": name, "start": start, "end": end,
                "duration": end - start, "parent_id": parent,
                "trace_id": trace, "status": "ok", "tags": tags}

    def test_explicit_parent_links_win(self):
        spans = [
            self._span(1, "root", 0.0, 10.0),
            self._span(2, "child", 1.0, 4.0, parent=1),
        ]
        roots = build_trace_tree(spans)
        assert len(roots) == 1
        assert roots[0].name == "root"
        assert [c.name for c in roots[0].children] == ["child"]

    def test_containment_picks_smallest_enclosing_interval(self):
        spans = [
            self._span(1, "root", 0.0, 10.0),
            self._span(2, "mid", 2.0, 8.0),
            self._span(3, "leaf", 3.0, 4.0),
        ]
        roots = build_trace_tree(spans)
        root, = roots
        mid, = root.children
        assert mid.name == "mid"
        assert [c.name for c in mid.children] == ["leaf"]

    def test_critical_path_self_times_partition_root_duration(self):
        spans = [
            self._span(1, "root", 0.0, 10.0),
            self._span(2, "a", 1.0, 4.0, parent=1),
            self._span(3, "b", 5.0, 9.0, parent=1),
            self._span(4, "gc", 6.0, 8.0, parent=3),
        ]
        root, = build_trace_tree(spans)
        attributed = critical_path(root)
        self_times = {}
        for node, self_time in attributed:
            self_times[node.name] = self_times.get(node.name, 0.0) + self_time
        assert sum(self_times.values()) == pytest.approx(10.0)
        assert self_times["root"] == pytest.approx(3.0)  # 3 uncovered gaps
        assert self_times["a"] == pytest.approx(3.0)
        assert self_times["b"] == pytest.approx(2.0)
        assert self_times["gc"] == pytest.approx(2.0)

    def test_analyze_fractions_sum_to_one(self):
        spans = [
            self._span(1, "root", 0.0, 10.0),
            self._span(2, "a", 1.0, 4.0, parent=1),
            # A second, independent trace.
            self._span(3, "root", 0.0, 2.0, trace=8),
        ]
        analysis = analyze(spans)
        assert analysis.trace_count == 2
        assert analysis.total_time == pytest.approx(12.0)
        total_fraction = sum(entry["fraction"]
                             for _, entry in analysis.top(10))
        assert total_fraction == pytest.approx(1.0)
        assert analysis.fraction_of("a") == pytest.approx(3.0 / 12.0)

    def test_group_and_summaries_skip_untraced_spans(self):
        spans = [
            self._span(1, "root", 0.0, 1.0, trace=5),
            self._span(2, "orphan", 0.0, 1.0, trace=None),
        ]
        groups = group_by_trace(spans)
        assert set(groups) == {5}
        rows = trace_summaries(spans)
        assert [row["trace_id"] for row in rows] == [5]

    def test_real_run_builds_trees_with_dispatch_roots(self):
        telemetry, _, _ = _chaotic_deployment(loss=0.0, duration=2.0)
        spans = [s.to_dict() for s in telemetry.tracer.spans]
        groups = group_by_trace(spans)
        assert groups
        analysis = analyze(spans)
        assert analysis.total_time > 0
        names = {name for name, _ in analysis.top(10)}
        assert "appvisor.checkpoint" in names


class TestHealthWatchdog:
    def _sim_telemetry(self):
        sim = Simulator()
        telemetry = Telemetry(enabled=True, clock=lambda: sim.now)
        return sim, telemetry

    def test_clean_run_scores_healthy_with_zero_anomalies(self):
        telemetry = Telemetry(enabled=True)
        net = Network(linear_topology(3, 1), seed=0, telemetry=telemetry)
        runtime = LegoSDNRuntime(net.controller)
        runtime.launch_app(LearningSwitch())
        watchdog = HealthWatchdog(telemetry, net.sim)
        net.start()
        net.run_for(1.0)
        TrafficWorkload(net, rate=30.0, seed=0,
                        selection="random").start(2.0)
        net.run_for(3.0)
        assert watchdog.sweeps > 0
        assert not watchdog.anomalies
        assert watchdog.health_score() == 1.0
        assert watchdog.status_of(watchdog.health_score()) == "healthy"

    def test_chaos_run_flags_retransmit_storm(self):
        telemetry = Telemetry(enabled=True)
        profile = ChaosProfile(seed=0, loss=LOSS, duplicate=DUPLICATE,
                               reorder=REORDER, jitter=0.0005)
        net = Network(linear_topology(4, 1), seed=0, telemetry=telemetry)
        runtime = LegoSDNRuntime(net.controller,
                                 channel_retry_budget=RETRY_BUDGET,
                                 chaos=lambda name: profile)
        runtime.launch_app(LearningSwitch())
        watchdog = HealthWatchdog(telemetry, net.sim)
        net.start()
        net.run_for(1.0)
        TrafficWorkload(net, rate=50.0, seed=0,
                        selection="random").start(3.0)
        net.run_for(4.0)
        counts = watchdog.anomaly_counts()
        assert counts.get("retransmit-storm", 0) > 0
        assert watchdog.health_score() < 0.9

    def test_recovery_slo_burn_flagged(self):
        telemetry = Telemetry(enabled=True)
        net = Network(linear_topology(3, 1), seed=0, telemetry=telemetry)
        runtime = LegoSDNRuntime(net.controller)
        runtime.launch_app(crash_on(LearningSwitch(),
                                    payload_marker="BOOM"))
        # Any real recovery busts a 1 microsecond SLO.
        watchdog = HealthWatchdog(telemetry, net.sim, recovery_slo=1e-6)
        net.start()
        net.run_for(1.5)
        net.reachability()
        net.run_for(LearningSwitch.IDLE_TIMEOUT + 1.0)
        hosts = sorted(net.hosts)
        inject_marker_packet(net, hosts[0], hosts[-1], "BOOM")
        net.run_for(2.0)
        assert runtime.total_recoveries() == 1
        burns = [a for a in watchdog.anomalies
                 if a.kind == "recovery-slo-burn"]
        assert len(burns) == 1
        assert burns[0].tags["app"] == "learning_switch"

    def test_latency_regression_against_rolling_baseline(self):
        sim, telemetry = self._sim_telemetry()
        watchdog = HealthWatchdog(telemetry, sim, interval=0.25,
                                  min_samples=4, latency_factor=3.0)

        def emit(duration):
            telemetry.tracer.record_span(
                "probe", start=sim.now - duration, trace_id=1)

        # Establish a ~1ms baseline over several sweeps...
        stop = sim.every(0.05, emit, 0.001)
        sim.run_for(1.5)
        stop()
        assert not watchdog.anomalies
        # ...then blow p95 up by 100x.
        stop = sim.every(0.05, emit, 0.1)
        sim.run_for(1.0)
        stop()
        kinds = [a.kind for a in watchdog.anomalies]
        assert "latency-regression" in kinds
        # One anomaly per episode, not one per sweep.
        assert kinds.count("latency-regression") == 1

    def test_anomalies_land_in_flight_recorder_and_metrics(self):
        sim, telemetry = self._sim_telemetry()
        watchdog = HealthWatchdog(telemetry, sim, interval=0.25,
                                  retransmit_rate_threshold=1.0)
        sim.run_for(0.3)  # first sweep sets the counter baseline
        telemetry.metrics.inc("channel.retransmits", 500)
        sim.run_for(0.5)
        assert watchdog.anomaly_counts().get("retransmit-storm", 0) >= 1
        assert telemetry.metrics.counters["watchdog.anomalies"] >= 1
        kinds = {r.get("name") for r in telemetry.recorder.dump()}
        assert "watchdog.retransmit-storm" in kinds

    def test_score_decays_back_toward_healthy(self):
        sim, telemetry = self._sim_telemetry()
        watchdog = HealthWatchdog(telemetry, sim, interval=0.25,
                                  retransmit_rate_threshold=1.0)
        sim.run_for(0.3)
        telemetry.metrics.inc("channel.retransmits", 500)
        sim.run_for(0.5)
        watchdog.stop()
        hurt = watchdog.health_score()
        assert hurt < 1.0
        healed = watchdog.health_score(now=sim.now + 60.0)
        assert healed > hurt
        assert healed > 0.99

    def test_healthz_payload_shape(self):
        sim, telemetry = self._sim_telemetry()
        watchdog = HealthWatchdog(telemetry, sim)
        telemetry.tracer.record_span("probe", start=sim.now)
        sim.run_for(0.6)
        payload = watchdog.healthz_payload()
        assert payload["status"] == "healthy"
        assert payload["score"] == 1.0
        assert payload["sweeps"] >= 2
        assert payload["anomaly_total"] == 0
        assert "probe" in payload["rolling"]
        assert set(payload["rolling"]["probe"]) == {
            "count", "p50", "p95", "p99"}
