"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are ``(time, seq, fn)``
triples ordered by time with FIFO tie-breaking, so two events scheduled
for the same instant fire in scheduling order.  All randomness in the
simulation flows through :attr:`Simulator.rng` (a seeded
``random.Random``), which keeps whole experiments reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Optional


class CancelledEvent:
    """Sentinel stored in the heap for cancelled events."""


_CANCELLED = CancelledEvent()


class Simulator:
    """The simulation clock and event queue.

    Typical use::

        sim = Simulator(seed=42)
        sim.schedule(0.5, lambda: print("fired at", sim.now))
        sim.run()
    """

    def __init__(self, seed: int = 0):
        self._queue = []
        self._seq = itertools.count()
        self._events = {}
        self.now = 0.0
        self.rng = random.Random(seed)
        self._events_processed = 0

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args) -> int:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time.

        Returns an event id usable with :meth:`cancel`.  Negative
        delays are clamped to "now" (still FIFO-ordered after events
        already scheduled for now).
        """
        eid = next(self._seq)
        entry = [self.now + max(0.0, delay), eid, fn, args]
        self._events[eid] = entry
        heapq.heappush(self._queue, entry)
        return eid

    def schedule_at(self, when: float, fn: Callable, *args) -> int:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        return self.schedule(when - self.now, fn, *args)

    def cancel(self, eid: int) -> bool:
        """Cancel a pending event; returns False if it already fired."""
        entry = self._events.pop(eid, None)
        if entry is None:
            return False
        entry[2] = _CANCELLED
        return True

    def every(self, interval: float, fn: Callable, *args) -> Callable[[], None]:
        """Run ``fn`` every ``interval`` seconds until the returned
        stopper callable is invoked."""
        stopped = [False]
        holder = [None]

        def tick():
            if stopped[0]:
                return
            fn(*args)
            holder[0] = self.schedule(interval, tick)

        holder[0] = self.schedule(interval, tick)

        def stop():
            stopped[0] = True
            if holder[0] is not None:
                self.cancel(holder[0])

        return stop

    # -- execution -----------------------------------------------------

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue; returns the number of events processed.

        ``max_events`` is a runaway-loop backstop, not a pacing knob.
        """
        processed = 0
        while self._queue and processed < max_events:
            processed += self._step()
        return processed

    def run_until(self, when: float, max_events: int = 10_000_000) -> int:
        """Process events with time <= ``when``; clock ends at ``when``."""
        processed = 0
        while self._queue and self._queue[0][0] <= when and processed < max_events:
            processed += self._step()
        self.now = max(self.now, when)
        return processed

    def run_for(self, duration: float, max_events: int = 10_000_000) -> int:
        """Advance the clock by ``duration`` seconds."""
        return self.run_until(self.now + duration, max_events)

    def _step(self) -> int:
        when, eid, fn, args = heapq.heappop(self._queue)
        if fn is _CANCELLED:
            return 0
        self._events.pop(eid, None)
        self.now = when
        fn(*args)
        self._events_processed += 1
        return 1

    # -- introspection ---------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of live (uncancelled) events still queued."""
        return len(self._events)

    @property
    def events_processed(self) -> int:
        return self._events_processed
