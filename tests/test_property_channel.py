"""Property-based tests for the RPC channel's delivery guarantees."""

from hypothesis import given, settings, strategies as st

from repro.core.appvisor.channel import UdpChannel
from repro.core.appvisor.rpc import CrashReport, Heartbeat
from repro.network.simulator import Simulator


def frame_of_size(i, n):
    """A frame whose encoded size grows with n (error text padding)."""
    return CrashReport(app_name="app", seq=i, error="e" * n)


@given(st.lists(st.integers(min_value=0, max_value=800),
                min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_fifo_regardless_of_frame_sizes(sizes):
    """Frames arrive in send order no matter how their sizes mix."""
    sim = Simulator()
    channel = UdpChannel(sim, base_delay=0.0002, per_byte_delay=1e-6)
    got = []
    channel.proxy_end.on_frame(lambda f: got.append(f.seq))
    for i, n in enumerate(sizes):
        channel.stub_end.send(frame_of_size(i, n))
    sim.run()
    assert got == list(range(len(sizes)))


@given(st.lists(st.integers(min_value=0, max_value=500),
                min_size=1, max_size=15),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_staggered_sends_still_fifo(sizes, gap_ms):
    """Sends spread over time keep order too."""
    sim = Simulator()
    channel = UdpChannel(sim, base_delay=0.0005, per_byte_delay=2e-6)
    got = []
    channel.proxy_end.on_frame(lambda f: got.append(f.seq))

    def send(i, n):
        channel.stub_end.send(frame_of_size(i, n))

    for i, n in enumerate(sizes):
        sim.schedule(i * gap_ms / 1000.0, send, i, n)
    sim.run()
    assert got == list(range(len(sizes)))


@given(st.lists(st.integers(min_value=1, max_value=400),
                min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_transmission_serialises_at_line_rate(sizes):
    """A burst drains no faster than the line rate allows."""
    sim = Simulator()
    per_byte = 1e-5
    channel = UdpChannel(sim, base_delay=0.001, per_byte_delay=per_byte)
    arrivals = []
    channel.proxy_end.on_frame(lambda f: arrivals.append(sim.now))
    total_bytes = 0
    for i, n in enumerate(sizes):
        frame = frame_of_size(i, n)
        channel.stub_end.send(frame)
    total_bytes = channel.stub_end.bytes_sent
    sim.run()
    assert len(arrivals) == len(sizes)
    # the last arrival cannot beat pure transmission time + propagation
    assert arrivals[-1] >= total_bytes * per_byte

    # directions are independent: the reverse path is idle and fast
    reply_arrival = []
    channel.stub_end.on_frame(lambda f: reply_arrival.append(sim.now))
    t0 = sim.now
    channel.proxy_end.send(Heartbeat(app_name="a", stub_time=0.0,
                                     last_seq_done=0))
    sim.run()
    assert reply_arrival and reply_arrival[0] - t0 < 0.01


# ---------------------------------------------------------------------------
# Exactly-once delivery under adversity (reliable mode + chaos plane)
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=10_000),
       st.floats(min_value=0.0, max_value=0.35),
       st.floats(min_value=0.0, max_value=0.3),
       st.floats(min_value=0.0, max_value=0.3),
       st.integers(min_value=1, max_value=25))
@settings(max_examples=60, deadline=None)
def test_reliable_channel_is_exactly_once_in_order(seed, loss, dup,
                                                   reorder, count):
    """Under any mix of loss, duplication, and reordering the reliable
    channel delivers every frame exactly once, in send order."""
    from repro.faults.netfaults import ChaosProfile

    sim = Simulator()
    profile = ChaosProfile(seed=seed, loss=loss, duplicate=dup,
                           reorder=reorder, jitter=0.0005)
    channel = UdpChannel(sim, seed=seed, reliable=True, retry_budget=30,
                         chaos=profile)
    got = []
    channel.proxy_end.on_frame(lambda f: got.append(f.seq))
    for i in range(count):
        channel.stub_end.send(frame_of_size(i, 8))
    sim.run()
    assert got == list(range(count))
    assert channel.abandoned == 0


@given(st.integers(min_value=0, max_value=10_000),
       st.floats(min_value=0.0, max_value=0.25),
       st.integers(min_value=1, max_value=15))
@settings(max_examples=40, deadline=None)
def test_reliable_channel_survives_corruption(seed, corrupt, count):
    """Corrupted datagrams are rejected (CRC or codec) and healed by
    retransmission -- never delivered mangled, never delivered twice."""
    from repro.faults.netfaults import ChaosProfile

    sim = Simulator()
    profile = ChaosProfile(seed=seed, corrupt=corrupt)
    channel = UdpChannel(sim, seed=seed, reliable=True, retry_budget=30,
                         chaos=profile)
    got = []
    channel.proxy_end.on_frame(lambda f: got.append((f.seq, f.error)))
    for i in range(count):
        channel.stub_end.send(frame_of_size(i, 16))
    sim.run()
    assert got == [(i, "e" * 16) for i in range(count)]
    # Every rejection traces back to an injected flip.  Not equality:
    # a flip can be a semantic no-op (e.g. the codec tag of an ack's
    # cumulative=0 flipping int->float decodes to an equal value with
    # an identical checksum) -- undetectable because it changed nothing.
    assert channel.corrupt_rejected <= profile.corrupted


@given(st.integers(min_value=0, max_value=10_000),
       st.lists(st.sampled_from(["stub", "proxy"]),
                min_size=2, max_size=16))
@settings(max_examples=40, deadline=None)
def test_both_directions_exactly_once(seed, directions):
    """Sequencing is per-side: interleaved bidirectional traffic under
    chaos still lands exactly once, in order, on each side."""
    from repro.faults.netfaults import ChaosProfile

    sim = Simulator()
    profile = ChaosProfile(seed=seed, loss=0.2, duplicate=0.15,
                           reorder=0.15)
    channel = UdpChannel(sim, seed=seed, reliable=True, retry_budget=30,
                         chaos=profile)
    at_proxy, at_stub = [], []
    channel.proxy_end.on_frame(lambda f: at_proxy.append(f.seq))
    channel.stub_end.on_frame(lambda f: at_stub.append(f.seq))
    sent = {"stub": [], "proxy": []}
    for i, side in enumerate(directions):
        end = channel.stub_end if side == "stub" else channel.proxy_end
        end.send(frame_of_size(i, 4))
        sent[side].append(i)
    sim.run()
    assert at_proxy == sent["stub"]
    assert at_stub == sent["proxy"]
