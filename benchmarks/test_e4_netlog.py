"""E4: NetLog rollback fidelity (§3.2).

"NetLog ensures that the network-wide state remains consistent
regardless of failures" -- including the subtle part: timeouts and
counters survive a delete/re-add cycle via the counter-cache.

Three runtimes handle the same mid-policy crash (an app installs 2 of
a 3-switch policy then dies):

- **monolithic** (no NetLog): orphan rules remain;
- **LegoSDN/netlog**: eager apply, rollback on crash;
- **LegoSDN/buffer** (§4.1 prototype): outputs held, discarded on crash.

A second scenario deletes a *live, counted* flow and crashes, checking
that rollback restores the entry with its remaining timeout and that
statistics replies report cache-corrected counters.

Expected shape: monolithic leaves orphans; both LegoSDN modes leave
zero; post-rollback tables are byte-identical; corrected counters
equal pre-delete counters.
"""

from repro.apps import LearningSwitch
from repro.core.netlog.rollback import fingerprint_tables
from repro.faults import PartialPolicyApp, crash_on
from repro.network.topology import linear_topology
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.workloads.traffic import inject_marker_packet

from benchmarks.harness import build_legosdn, build_monolithic, print_table, run_once


class DeleteThenCrashApp(PartialPolicyApp):
    """Deletes an existing (counted) flow, then crashes."""

    name = "deleter"

    def on_packet_in(self, event):
        payload = getattr(event.packet, "payload", "") or ""
        if self.marker not in payload:
            return
        self.api.emit(
            self.policy_dpids[0],
            FlowMod(match=Match(eth_dst="victim"),
                    command=FlowModCommand.DELETE),
        )
        raise RuntimeError("crashed right after the delete")


def _tables(net):
    return {dpid: sw.flow_table for dpid, sw in net.switches.items()}


def _mid_policy_crash(kind):
    app = PartialPolicyApp(policy_dpids=(1, 2, 3), crash_after=2)
    if kind == "monolithic":
        net, runtime = build_monolithic(linear_topology(3, 1), [lambda: app])
    else:
        net, runtime = build_legosdn(linear_topology(3, 1), [app], mode=kind)
    fp_before = fingerprint_tables(_tables(net))
    inject_marker_packet(net, "h1", "h3", "POLICY")
    net.run_for(2.0)
    return {
        "orphan_rules": net.total_flow_entries(),
        "tables_restored": fingerprint_tables(_tables(net)) == fp_before,
    }


def _delete_rollback_with_counters():
    app = DeleteThenCrashApp(policy_dpids=(1,), marker="DEL")
    net, runtime = build_legosdn(linear_topology(2, 1), [app])
    manager = runtime.proxy.manager
    # Install a victim flow through NetLog so the shadow knows it.
    txn = manager.begin("operator", "setup")
    victim = FlowMod(match=Match(eth_dst="victim"), priority=300,
                     actions=(Output(1),), hard_timeout=60.0)
    manager.apply(txn, 1, victim)
    manager.commit(txn)
    net.run_for(0.2)
    # Traffic accrues counters on both the switch and shadow views.
    shadow_entry = manager.shadow_table(1).entries[0]
    shadow_entry.packet_count = 123
    shadow_entry.byte_count = 12300
    real_entry = net.switch(1).flow_table.entries[0]
    real_entry.packet_count = 123
    real_entry.byte_count = 12300
    inject_marker_packet(net, "h1", "h2", "DEL")
    net.run_for(2.0)
    table = net.switch(1).flow_table
    restored = [e for e in table if e.match == Match(eth_dst="victim")]
    cached = manager.counter_cache.lookup(1, Match(eth_dst="victim"), 300)
    corrected = manager.counter_cache.patch_counts(
        1, Match(eth_dst="victim"), 300,
        restored[0].packet_count if restored else 0,
        restored[0].byte_count if restored else 0)
    return {
        "entry_restored": bool(restored),
        "remaining_timeout": restored[0].hard_timeout if restored else 0.0,
        "raw_counters": (restored[0].packet_count if restored else -1),
        "cached": cached.packet_count if cached else 0,
        "corrected_counters": corrected,
    }


def test_e4_netlog_rollback(benchmark):
    def experiment():
        return {
            "monolithic": _mid_policy_crash("monolithic"),
            "netlog": _mid_policy_crash("netlog"),
            "buffer": _mid_policy_crash("buffer"),
            "counters": _delete_rollback_with_counters(),
        }

    r = run_once(benchmark, experiment)
    print_table(
        "E4: mid-policy crash (2 of 3 rules installed, then app dies)",
        ["runtime", "orphan rules left", "tables byte-identical"],
        [[k, r[k]["orphan_rules"], "yes" if r[k]["tables_restored"] else "NO"]
         for k in ("monolithic", "netlog", "buffer")],
    )
    c = r["counters"]
    print_table(
        "E4b: delete-then-crash -- counter-cache fidelity",
        ["property", "value"],
        [
            ["victim entry restored", "yes" if c["entry_restored"] else "NO"],
            ["remaining hard timeout (of 60s)",
             f"{c['remaining_timeout']:.1f}s"],
            ["raw hardware counters after restore", c["raw_counters"]],
            ["counter-cache holds", c["cached"]],
            ["corrected (as apps observe)", c["corrected_counters"][0]],
        ],
    )
    benchmark.extra_info["results"] = {
        k: v for k, v in r.items() if k != "counters"}

    assert r["monolithic"]["orphan_rules"] == 2       # the paper's problem
    assert r["netlog"]["orphan_rules"] == 0           # rolled back
    assert r["buffer"]["orphan_rules"] == 0           # never applied
    assert r["netlog"]["tables_restored"]
    assert r["buffer"]["tables_restored"]
    assert c["entry_restored"]
    assert 0 < c["remaining_timeout"] < 60.0          # remaining, not reset
    assert c["raw_counters"] == 0                     # hardware forgot...
    assert c["corrected_counters"][0] == 123          # ...NetLog didn't
