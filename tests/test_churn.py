"""Tests for the host-churn workload (repro.workloads.churn)."""

import pytest

from repro.apps import LearningSwitch
from repro.core.runtime import LegoSDNRuntime
from repro.network.net import Network
from repro.network.topology import linear_topology
from repro.workloads import ChurnWorkload


def build(switches=3):
    net = Network(linear_topology(switches, 1), seed=0)
    runtime = LegoSDNRuntime(net.controller)
    runtime.launch_app(LearningSwitch())
    net.start()
    net.run_for(1.0)
    return net, runtime


class TestChurnWorkload:
    def test_rejects_bad_rate(self):
        net, _ = build()
        with pytest.raises(ValueError):
            ChurnWorkload(net, rate=0)

    def test_toggles_are_tracked(self):
        net, _ = build()
        churn = ChurnWorkload(net, seed=1)
        before = set(churn.up_hosts())
        event = churn.churn_one()
        kind, name = event.split(":")
        assert kind in ("join", "leave")
        after = set(churn.up_hosts())
        assert before.symmetric_difference(after) == {name} or kind == "join"
        assert churn.joins + churn.leaves == 1

    def test_population_floor_respected(self):
        net, _ = build()
        churn = ChurnWorkload(net, min_hosts=2, seed=0)
        for _ in range(50):
            churn.churn_one()
            assert len(churn.up_hosts()) >= 2

    def test_leave_downs_the_access_link(self):
        net, _ = build()
        churn = ChurnWorkload(net, seed=0)
        churn._leave("h1")
        assert not net.host_link("h1").up
        assert "h1" not in churn.up_hosts()

    def test_rejoin_gets_fresh_mac(self):
        net, _ = build()
        churn = ChurnWorkload(net, seed=0)
        old_mac = net.hosts["h1"].mac
        churn._leave("h1")
        churn._join("h1")
        assert net.hosts["h1"].mac != old_mac
        assert net.host_link("h1").up

    def test_fresh_mac_can_be_disabled(self):
        net, _ = build()
        churn = ChurnWorkload(net, fresh_mac=False, seed=0)
        old_mac = net.hosts["h1"].mac
        churn._leave("h1")
        churn._join("h1")
        assert net.hosts["h1"].mac == old_mac

    def test_start_schedules_rate_times_duration(self):
        net, _ = build()
        churn = ChurnWorkload(net, rate=4.0, seed=0)
        assert churn.start(2.0) == 8
        net.run_for(2.5)
        assert churn.joins + churn.leaves == 8

    def test_churned_hosts_relearn_through_controller(self):
        """After a leave/rejoin with a fresh MAC, reachability recovers
        -- the rejoined host is re-learned via PacketIn."""
        net, _ = build()
        assert net.reachability(wait=0.5) == 1.0
        churn = ChurnWorkload(net, seed=0)
        churn._leave("h2")
        churn._join("h2")
        net.run_for(0.5)
        assert net.reachability(wait=0.5) == 1.0


class TestDpidSubset:
    """Sharded experiments churn one shard's edge and spare the rest."""

    def test_dpids_select_attached_hosts(self):
        net, _ = build(switches=4)
        churn = ChurnWorkload(net, dpids=[2, 3], seed=0)
        expected = {spec.name for spec in net.topology.hosts
                    if spec.dpid in (2, 3)}
        assert set(churn.names) == expected
        assert churn.dpids == [2, 3]

    def test_churn_stays_inside_the_subset(self):
        net, _ = build(switches=4)
        churn = ChurnWorkload(net, dpids=[2], min_hosts=0, seed=3)
        outside = {spec.name for spec in net.topology.hosts
                   if spec.dpid != 2}
        for _ in range(30):
            event = churn.churn_one()
            assert event.split(":")[1] not in outside
        for name in outside:
            assert net.host_link(name).up, f"{name} churned outside subset"

    def test_hosts_and_dpids_are_mutually_exclusive(self):
        net, _ = build()
        with pytest.raises(ValueError):
            ChurnWorkload(net, hosts=["h1"], dpids=[1])

    def test_empty_subset_rejected(self):
        net, _ = build(switches=3)
        with pytest.raises(ValueError):
            ChurnWorkload(net, dpids=[99])
