"""Controller<->switch control channel.

Models the TCP session between a switch and the controller: fixed
one-way delay, FIFO ordering, and explicit connect/disconnect (a
switch power-off or controller crash drops the channel, which is how
the controller observes "switch down").
"""

from __future__ import annotations


class ControlChannel:
    """One switch's session with the controller."""

    def __init__(self, sim, controller, switch, delay: float = 0.0005):
        self.sim = sim
        self.controller = controller
        self.switch = switch
        self.delay = delay
        self.connected = True
        self.to_controller_count = 0
        self.to_switch_count = 0
        switch.channel = self

    @property
    def dpid(self) -> int:
        return self.switch.dpid

    def to_controller(self, msg) -> bool:
        """Switch -> controller, after the channel delay."""
        if not self.connected or self.controller.crashed:
            return False
        self.to_controller_count += 1
        self.sim.schedule(
            self.delay, self._deliver_to_controller, msg
        )
        return True

    def _deliver_to_controller(self, msg) -> None:
        if self.connected and not self.controller.crashed:
            self.controller.handle_switch_message(self.switch.dpid, msg)

    def to_switch(self, msg) -> bool:
        """Controller -> switch, after the channel delay."""
        if not self.connected:
            return False
        self.to_switch_count += 1
        self.sim.schedule(self.delay, self._deliver_to_switch, msg)
        return True

    def _deliver_to_switch(self, msg) -> None:
        # No connectivity re-check: a message accepted while the
        # session was up is already on the wire and will land even if
        # the controller process dies meanwhile -- that is exactly how
        # partially installed policies outlive an app crash (§3.4).
        # Writes are stamped with the sender's replication epoch at
        # delivery time, so a fenced switch can reject a stale primary
        # even when the datagram was emitted before the failover.
        if self.switch.up:
            self.switch.handle_message(
                msg, epoch=getattr(self.controller, "epoch", None)
            )

    def disconnect(self) -> None:
        """Tear the session down (switch died or controller crashed)."""
        if not self.connected:
            return
        self.connected = False
        self.controller.switch_disconnected(self.switch.dpid)

    def reconnect(self) -> None:
        """Re-establish the session (switch rebooted / controller back)."""
        if self.connected:
            return
        self.connected = True
        self.controller.switch_reconnected(self.switch.dpid)
