"""Tests for OpenFlow packet buffering (buffer_id semantics)."""

import pytest

from repro.apps import Hub, LearningSwitch
from repro.controller.monolithic import MonolithicRuntime
from repro.core.runtime import LegoSDNRuntime
from repro.network.net import Network
from repro.network.packet import Packet, tcp_packet
from repro.network.simulator import Simulator
from repro.network.switch import Switch
from repro.network.topology import linear_topology
from repro.openflow.actions import Output
from repro.openflow.messages import ErrorMsg, PacketIn, PacketOut
from repro.workloads.traffic import inject_marker_packet


class FakeChannel:
    def __init__(self):
        self.messages = []

    def to_controller(self, msg):
        self.messages.append(msg)

    def of_type(self, cls):
        return [m for m in self.messages if isinstance(m, cls)]


@pytest.fixture
def switch():
    sw = Switch(1, Simulator())
    sw.channel = FakeChannel()
    return sw


class TestSwitchBuffer:
    def test_packet_in_carries_buffer_id(self, switch):
        switch.receive_packet(tcp_packet("a", "b", "1", "2"), in_port=1)
        pktin = switch.channel.of_type(PacketIn)[0]
        assert pktin.buffer_id is not None

    def test_buffer_ids_unique(self, switch):
        for i in range(3):
            switch.receive_packet(tcp_packet("a", "b", "1", "2"), in_port=1)
        ids = [m.buffer_id for m in switch.channel.of_type(PacketIn)]
        assert len(set(ids)) == 3

    def test_packet_out_releases_buffered_packet(self, switch):
        sent = []
        switch.send_out = lambda pkt, port: sent.append((pkt, port))
        original = tcp_packet("a", "b", "1", "2", payload="precious")
        switch.receive_packet(original, in_port=1)
        buffer_id = switch.channel.of_type(PacketIn)[0].buffer_id
        switch.handle_message(PacketOut(buffer_id=buffer_id,
                                        actions=(Output(2),)))
        assert len(sent) == 1
        assert sent[0][0].payload == "precious"
        assert switch.buffer_hits == 1

    def test_buffer_consumed_once(self, switch):
        switch.receive_packet(tcp_packet("a", "b", "1", "2"), in_port=1)
        buffer_id = switch.channel.of_type(PacketIn)[0].buffer_id
        switch.handle_message(PacketOut(buffer_id=buffer_id,
                                        actions=(Output(2),)))
        switch.handle_message(PacketOut(buffer_id=buffer_id,
                                        actions=(Output(2),)))
        assert switch.buffer_misses == 1
        assert switch.channel.of_type(ErrorMsg)

    def test_stale_id_with_inline_fallback_forwards(self, switch):
        sent = []
        switch.send_out = lambda pkt, port: sent.append(pkt)
        switch.handle_message(PacketOut(buffer_id=9999,
                                        packet=tcp_packet("a", "b", "1", "2"),
                                        actions=(Output(2),)))
        assert len(sent) == 1
        assert not switch.channel.of_type(ErrorMsg)

    def test_eviction_bounds_memory(self, switch):
        for i in range(Switch.PACKET_BUFFER_SLOTS + 10):
            switch.receive_packet(tcp_packet("a", "b", "1", "2"), in_port=1)
        assert len(switch._packet_buffer) == Switch.PACKET_BUFFER_SLOTS

    def test_lldp_not_buffered(self, switch):
        from repro.network.packet import ETH_TYPE_LLDP

        switch.receive_packet(Packet(eth_type=ETH_TYPE_LLDP,
                                     payload="lldp:2:1"), in_port=1)
        assert switch.channel.of_type(PacketIn)[0].buffer_id is None

    def test_buffering_can_be_disabled(self):
        sw = Switch(1, Simulator(), buffer_packets=False)
        sw.channel = FakeChannel()
        sw.receive_packet(tcp_packet("a", "b", "1", "2"), in_port=1)
        assert sw.channel.of_type(PacketIn)[0].buffer_id is None


class TestEndToEnd:
    def test_connectivity_via_buffered_packet_outs(self):
        net = Network(linear_topology(3, 1), seed=0)
        runtime = MonolithicRuntime(net.controller)
        runtime.launch_app(LearningSwitch)
        net.start()
        net.run_for(1.0)
        assert net.reachability() == 1.0
        assert sum(sw.buffer_hits for sw in net.switches.values()) > 0

    def test_payloads_survive_buffered_forwarding(self):
        net = Network(linear_topology(2, 1), seed=0)
        runtime = MonolithicRuntime(net.controller)
        runtime.launch_app(Hub)
        net.start()
        net.run_for(1.0)
        inject_marker_packet(net, "h1", "h2", "full-payload-intact")
        net.run_for(1.0)
        payloads = [p.payload for _, p in net.host("h2").received
                    if not p.is_lldp()]
        assert "full-payload-intact" in payloads

    def test_buffering_saves_rpc_bytes_under_legosdn(self):
        """The point of buffer_id: packet bodies stop riding the
        control/RPC channels on the way back out."""

        def rpc_bytes(buffering):
            net = Network(linear_topology(2, 1), seed=0,
                          buffer_packets=buffering)
            runtime = LegoSDNRuntime(net.controller)
            runtime.launch_app(Hub())
            net.start()
            net.run_for(1.0)
            for i in range(10):
                inject_marker_packet(net, "h1", "h2", f"pkt-{i}" + "x" * 400)
                net.run_for(0.3)
            return runtime.channels["hub"].bytes_carried

        assert rpc_bytes(buffering=True) < rpc_bytes(buffering=False) * 0.8

    def test_reachability_with_buffering_disabled(self):
        net = Network(linear_topology(2, 1), seed=0, buffer_packets=False)
        runtime = MonolithicRuntime(net.controller)
        runtime.launch_app(LearningSwitch)
        net.start()
        net.run_for(1.0)
        assert net.reachability() == 1.0
