"""The invariant checker proper.

Runs probe packets through a :class:`~repro.invariants.graph.NetSnapshot`
and reports :class:`Violation` records for:

- **loops** -- a probe revisits a (switch, port, header) state;
- **black-holes** -- a probe is dropped by forwarding state without
  reaching any host or the controller;
- **reachability** -- a host pair expected to communicate cannot;
- **waypoints** -- traffic required to traverse a middlebox switch
  does not.

Crash-Pad consults :meth:`InvariantChecker.check_all` after an app's
transaction to decide whether the output was byzantine (§3.3), and the
"No-Compromise invariants" of §5 are expressed as the ``critical``
flag on violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.invariants.graph import NetSnapshot, TraceResult, trace
from repro.network.packet import IPPROTO_TCP, Packet


@dataclass(frozen=True)
class Probe:
    """One probe: a packet injected at a host's attachment point."""

    src_mac: str
    dst_mac: str
    packet: Packet
    expect_delivery: bool = True

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.src_mac, self.dst_mac)


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    kind: str  # "loop" | "blackhole" | "reachability" | "waypoint"
    detail: str
    probe: Optional[Probe] = None
    critical: bool = False

    def __str__(self) -> str:
        flag = " [CRITICAL]" if self.critical else ""
        return f"{self.kind}{flag}: {self.detail}"


def build_host_probes(snapshot: NetSnapshot,
                      pairs: Optional[Iterable[Tuple[str, str]]] = None,
                      dst_port: int = 80) -> List[Probe]:
    """TCP probes for host pairs (default: all ordered pairs)."""
    macs = sorted(snapshot.hosts)
    if pairs is None:
        pairs = [(a, b) for a in macs for b in macs if a != b]
    probes = []
    for src_mac, dst_mac in pairs:
        src = snapshot.hosts.get(src_mac)
        dst = snapshot.hosts.get(dst_mac)
        if src is None or dst is None:
            continue
        probes.append(
            Probe(
                src_mac=src_mac,
                dst_mac=dst_mac,
                packet=Packet(
                    eth_src=src_mac, eth_dst=dst_mac,
                    ip_src=src.ip, ip_dst=dst.ip,
                    ip_proto=IPPROTO_TCP, tp_src=10000, tp_dst=dst_port,
                    size=64,
                ),
            )
        )
    return probes


class InvariantChecker:
    """Checks a snapshot against the configured invariants."""

    def __init__(self, snapshot: NetSnapshot,
                 critical_kinds: Sequence[str] = ("loop",)):
        self.snapshot = snapshot
        self.critical_kinds = frozenset(critical_kinds)
        self._trace_cache: Dict[Tuple[str, str, int], TraceResult] = {}

    # -- tracing -----------------------------------------------------------

    def trace_probe(self, probe: Probe) -> TraceResult:
        src = self.snapshot.hosts[probe.src_mac]
        key = (probe.src_mac, probe.dst_mac, probe.packet.tp_dst or 0)
        if key not in self._trace_cache:
            self._trace_cache[key] = trace(
                self.snapshot, src.dpid, src.port, probe.packet
            )
        return self._trace_cache[key]

    # -- individual invariants ---------------------------------------------------

    def check_loops(self, probes: Iterable[Probe]) -> List[Violation]:
        violations = []
        for probe in probes:
            result = self.trace_probe(probe)
            if result.looped:
                where = ", ".join(f"s{d}:{p}" for d, p in result.loops[:3])
                violations.append(self._mk(
                    "loop",
                    f"probe {probe.src_mac}->{probe.dst_mac} loops at {where}",
                    probe,
                ))
        return violations

    def check_blackholes(self, probes: Iterable[Probe]) -> List[Violation]:
        violations = []
        for probe in probes:
            result = self.trace_probe(probe)
            if result.blackholed:
                violations.append(self._mk(
                    "blackhole",
                    f"probe {probe.src_mac}->{probe.dst_mac} dropped by "
                    f"forwarding state (visited {sorted(result.switches_visited)})",
                    probe,
                ))
        return violations

    def check_reachability(self, probes: Iterable[Probe]) -> List[Violation]:
        """Probes that expect delivery must reach their destination MAC.

        A controller punt is NOT a violation: reactive apps install
        paths on demand, so an un-set-up pair is merely pending.
        """
        violations = []
        for probe in probes:
            if not probe.expect_delivery:
                continue
            result = self.trace_probe(probe)
            if result.looped or result.delivered or result.controller_punts:
                continue
            violations.append(self._mk(
                "reachability",
                f"{probe.src_mac} cannot reach {probe.dst_mac}",
                probe,
            ))
        return violations

    def check_waypoint(self, probe: Probe, waypoint_dpid: int) -> List[Violation]:
        """Traffic for ``probe`` must traverse ``waypoint_dpid``."""
        result = self.trace_probe(probe)
        if result.delivered and waypoint_dpid not in result.switches_visited:
            return [self._mk(
                "waypoint",
                f"{probe.src_mac}->{probe.dst_mac} delivered without "
                f"traversing s{waypoint_dpid}",
                probe,
            )]
        return []

    # -- the full sweep ----------------------------------------------------------

    def check_all(self, probes: Optional[Iterable[Probe]] = None) -> List[Violation]:
        """Loops + black-holes + reachability over ``probes``."""
        if probes is None:
            probes = build_host_probes(self.snapshot)
        probes = list(probes)
        violations = []
        violations.extend(self.check_loops(probes))
        violations.extend(self.check_blackholes(probes))
        violations.extend(self.check_reachability(probes))
        return violations

    def has_critical(self, violations: Iterable[Violation]) -> bool:
        return any(v.critical for v in violations)

    def _mk(self, kind: str, detail: str, probe: Optional[Probe]) -> Violation:
        return Violation(kind=kind, detail=detail, probe=probe,
                         critical=kind in self.critical_kinds)
