"""Counters and latency recorders."""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class LatencyRecorder:
    """Collects samples; reports mean/percentiles.

    Percentiles use the nearest-rank method over sorted samples --
    small-sample-friendly, which matters because control-loop
    experiments often record tens, not millions, of samples.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else math.nan

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else math.nan

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self.samples:
            return math.nan
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": self.minimum,
            "max": self.maximum,
        }


class MetricsCollector:
    """A named bag of counters and latency recorders."""

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.recorders: Dict[str, LatencyRecorder] = {}

    def inc(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def observe(self, name: str, value: float) -> None:
        recorder = self.recorders.get(name)
        if recorder is None:
            recorder = self.recorders[name] = LatencyRecorder(name)
        recorder.record(value)

    def recorder(self, name: str) -> Optional[LatencyRecorder]:
        return self.recorders.get(name)

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": dict(self.counters),
            "timers": {name: r.summary() for name, r in self.recorders.items()},
        }
