"""Tests for the sharded control plane: coordinator wiring, routing,
failover containment, rebalance, and merged observability."""

import json
import urllib.request

import pytest

from repro.apps import LearningSwitch
from repro.network.net import Network
from repro.network.topology import linear_topology
from repro.openflow.messages import Hello
from repro.shard import ShardCoordinator, ShardRouter
from repro.telemetry import Telemetry
from repro.telemetry.export import prometheus_text
from repro.telemetry.serve import MetricsServer


def build(shards=3, switches=6, backups=1, **kwargs):
    net = Network(linear_topology(switches, 1), seed=0)
    coordinator = ShardCoordinator(
        net, shards=shards, apps=(LearningSwitch,), backups=backups,
        **kwargs)
    coordinator.start()
    net.run_for(1.0)
    return net, coordinator


class TestWiring:
    def test_every_switch_connects_to_its_owning_shard(self):
        net, coordinator = build()
        for dpid in net.switches:
            owner = coordinator.owner_controller(dpid)
            assert dpid in owner.channels, \
                f"dpid {dpid} not connected to its owner"
            for shard_id, handle in coordinator.shards.items():
                if shard_id != coordinator.shard_of_dpid(dpid):
                    assert dpid not in handle.controller.channels

    def test_assignment_partitions_the_fabric(self):
        net, coordinator = build()
        owned = sorted(
            d for h in coordinator.shards.values() for d in h.dpids)
        assert owned == sorted(net.switches)

    def test_default_controller_left_inert(self):
        net, coordinator = build()
        assert not net.controller.channels
        assert net.controller.messages_received == 0

    def test_sharded_plane_serves_traffic(self):
        net, coordinator = build()
        assert net.reachability(wait=1.0) == 1.0

    def test_each_shard_fences_only_its_switches(self):
        net, coordinator = build()
        for shard_id, handle in coordinator.shards.items():
            for dpid in handle.dpids:
                assert net.switches[dpid].fence is handle.replicas.fence


class TestTraceIds:
    def test_shard_prefix_in_minted_ids(self):
        tracer_a = Telemetry(enabled=True, shard_id=2).tracer
        trace = tracer_a.mint_trace()
        assert (trace >> 48) & 0xFFFF == 2

    def test_no_collisions_across_shards_and_replicas(self):
        """Satellite 1 regression: K shards x N replicas all minting
        concurrently must never collide."""
        minted = []
        for shard_id in range(4):
            for replica_id in ("r0", "r1", "r2"):
                tracer = Telemetry(enabled=True, replica_id=replica_id,
                                   shard_id=shard_id).tracer
                minted.extend(tracer.mint_trace() for _ in range(100))
        assert len(minted) == len(set(minted)), "trace ids collided"

    def test_live_plane_mints_disjoint_ids(self):
        net, coordinator = build(telemetry_enabled=True)
        minted = []
        for handle in coordinator.shards.values():
            for replica in handle.replicas.replicas:
                minted.extend(
                    replica.telemetry.tracer.mint_trace()
                    for _ in range(50))
        assert len(minted) == len(set(minted))

    def test_spans_carry_shard_tag(self):
        net, coordinator = build(telemetry_enabled=True)
        net.reachability(wait=0.5)
        for shard_id, handle in coordinator.shards.items():
            spans = [s for s in handle.telemetry.tracer.spans
                     if s.tags.get("shard") == shard_id]
            assert spans, f"shard {shard_id} recorded no tagged spans"


class TestRouting:
    def test_misrouted_event_hops_to_owner(self):
        net, coordinator = build()
        dpid = coordinator.shards[0].dpids[0]
        wrong = coordinator.shards[1].controller
        owner = coordinator.owner_controller(dpid)
        before = owner.messages_received
        wrong.handle_switch_message(dpid, Hello())
        assert wrong.events_forwarded == 1
        assert owner.messages_received == before + 1

    def test_owned_event_not_forwarded(self):
        net, coordinator = build()
        dpid = coordinator.shards[0].dpids[0]
        owner = coordinator.owner_controller(dpid)
        owner.handle_switch_message(dpid, Hello())
        assert owner.events_forwarded == 0


class TestFailoverContainment:
    def test_other_shards_unaffected_by_one_primary_death(self):
        net, coordinator = build()
        victim = 1
        coordinator.crash_shard_primary(victim)
        net.run_for(2.0)
        for shard_id, handle in coordinator.shards.items():
            rs = handle.replicas
            if shard_id == victim:
                assert len(rs.failovers) == 1
                assert rs.primary.replica_id != "r0"
            else:
                assert len(rs.failovers) == 0
                assert rs.epoch == 0
        assert net.reachability(wait=1.0) == 1.0

    def test_promoted_controller_keeps_routing_hook(self):
        net, coordinator = build()
        coordinator.crash_shard_primary(1)
        net.run_for(2.0)
        promoted = coordinator.shards[1].controller
        assert promoted.shard_id == 1
        assert promoted.shard_router == coordinator.owner_controller


class TestRebalance:
    def test_moves_only_changed_dpids(self):
        net, coordinator = build()
        before = {shard_id: list(handle.dpids)
                  for shard_id, handle in coordinator.shards.items()}
        dpid = coordinator.shards[2].dpids[0]
        coordinator.router.pin(dpid, 0)
        moved = coordinator.rebalance()
        assert moved == [dpid]
        assert dpid in coordinator.shards[0].dpids
        assert dpid not in coordinator.shards[2].dpids
        for shard_id, handle in coordinator.shards.items():
            expect = set(before[shard_id])
            if shard_id == 0:
                expect.add(dpid)
            elif shard_id == 2:
                expect.discard(dpid)
            assert set(handle.dpids) == expect

    def test_moved_switch_serves_from_new_shard(self):
        net, coordinator = build()
        dpid = coordinator.shards[2].dpids[0]
        coordinator.router.pin(dpid, 0)
        coordinator.rebalance()
        net.run_for(1.0)
        assert dpid in coordinator.shards[0].controller.channels
        assert net.switches[dpid].fence is \
            coordinator.shards[0].replicas.fence
        assert net.reachability(wait=1.0) == 1.0

    def test_noop_rebalance_moves_nothing(self):
        net, coordinator = build()
        assert coordinator.rebalance() == []
        assert coordinator.rebalances == 0


class TestHealth:
    def test_healthy_plane_scores_one(self):
        net, coordinator = build()
        doc = coordinator.shard_health()
        assert doc["score"] == 1.0
        assert doc["status"] == "healthy"
        assert sorted(doc["shards"]) == ["0", "1", "2"]

    def test_min_fold_not_average(self):
        net, coordinator = build(health_window=1e9)
        coordinator.crash_shard_primary(1)
        net.run_for(2.0)
        doc = coordinator.shard_health()
        # Shard 1 failed over: no backups left + recent failover.
        assert doc["shards"]["1"]["score"] < 1.0
        assert doc["shards"]["0"]["score"] == 1.0
        assert doc["score"] == doc["shards"]["1"]["score"]

    def test_headless_shard_zeroes_the_plane(self):
        net, coordinator = build()
        # Kill the primary and the only backup: the shard is headless.
        coordinator.crash_shard_primary(1)
        net.run_for(2.0)
        coordinator.crash_shard_primary(1)
        doc = coordinator.shard_health()
        assert doc["shards"]["1"]["score"] == 0.0
        assert doc["score"] == 0.0
        assert doc["status"] == "critical"

    def test_healthz_endpoint_folds_shards_with_min(self):
        net, coordinator = build(health_window=1e9)
        coordinator.crash_shard_primary(2)
        net.run_for(2.0)
        telemetry = coordinator.telemetry
        server = MetricsServer(telemetry,
                               shard_health=coordinator.shard_health,
                               metrics_text=coordinator.prometheus_text)
        with server:
            with urllib.request.urlopen(server.url + "/healthz",
                                        timeout=5) as resp:
                doc = json.loads(resp.read().decode("utf-8"))
        assert doc["shards"]["2"]["score"] < 1.0
        assert doc["score"] == doc["shards"]["2"]["score"]


class TestPrometheus:
    def test_per_shard_labels(self):
        net, coordinator = build(telemetry_enabled=True)
        coordinator.crash_shard_primary(1)
        net.run_for(2.0)
        text = coordinator.prometheus_text()
        assert 'repro_shard_elections_total{shard="1"} 1' in text
        assert 'repro_shard_elections_total{shard="0"} 0' in text
        assert 'repro_shard_epoch{shard="1"} 1' in text
        assert 'repro_shard_quorum_commits_total{shard="0"}' in text
        assert 'repro_shard_resyncs_total{shard="0"}' in text
        assert '{shard="0"}' in text and '{shard="2"}' in text

    def test_type_headers_not_duplicated(self):
        net, coordinator = build(telemetry_enabled=True)
        net.run_for(0.5)
        lines = coordinator.prometheus_text().splitlines()
        type_lines = [l for l in lines if l.startswith("# TYPE")]
        assert len(type_lines) == len(set(type_lines))

    def test_served_metrics_use_coordinator_render(self):
        net, coordinator = build(telemetry_enabled=True)
        server = MetricsServer(coordinator.telemetry,
                               metrics_text=coordinator.prometheus_text)
        with server:
            with urllib.request.urlopen(server.url + "/metrics",
                                        timeout=5) as resp:
                body = resp.read().decode("utf-8")
        assert 'repro_shard_epoch{shard="0"} 0' in body

    def test_bare_export_unchanged_without_labels(self):
        telemetry = Telemetry(enabled=True)
        telemetry.metrics.inc("crashpad.recoveries", 3)
        text = prometheus_text(telemetry.metrics)
        assert "repro_crashpad_recoveries_total 3" in text
        assert "{" not in text.replace("# ", "")

    def test_labelled_export_wraps_every_sample(self):
        telemetry = Telemetry(enabled=True)
        telemetry.metrics.inc("crashpad.recoveries", 3)
        telemetry.metrics.observe("app.event_latency", 0.01)
        text = prometheus_text(telemetry.metrics,
                               labels={"shard": "7"})
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert 'shard="7"' in line, line


class TestStats:
    def test_stats_document(self):
        net, coordinator = build()
        stats = coordinator.stats()
        assert sorted(stats["assignment"]) == [0, 1, 2]
        assert stats["events_ingested"] > 0
        assert stats["rebalances"] == 0
        for shard_stats in stats["shards"].values():
            assert shard_stats["shard_id"] in (0, 1, 2)

    def test_explicit_router_is_honoured(self):
        net = Network(linear_topology(4, 1), seed=0)
        router = ShardRouter(2, seed=0, pins={1: 0, 2: 0, 3: 1, 4: 1})
        coordinator = ShardCoordinator(
            net, shards=2, apps=(LearningSwitch,), router=router)
        assert coordinator.shards[0].dpids == [1, 2]
        assert coordinator.shards[1].dpids == [3, 4]
