"""Tests for the invariant checker: traces, loops, black-holes."""

import pytest

from repro.apps import LearningSwitch
from repro.controller.monolithic import MonolithicRuntime
from repro.invariants import (
    InvariantChecker,
    NetSnapshot,
    Probe,
    build_host_probes,
    trace,
)
from repro.invariants.graph import HostAttachment
from repro.network.net import Network
from repro.network.packet import tcp_packet
from repro.network.topology import linear_topology, ring_topology
from repro.openflow.actions import Drop, Flood, Output, ToController
from repro.openflow.flowtable import FlowTable
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod


def snapshot_2sw(rules1=(), rules2=()):
    """Two switches: trunk on port 1; host on port 2 of each."""
    tables = {1: FlowTable(), 2: FlowTable()}
    for mod in rules1:
        tables[1].apply_flow_mod(mod, 0.0)
    for mod in rules2:
        tables[2].apply_flow_mod(mod, 0.0)
    return NetSnapshot(
        tables=tables,
        adjacency={(1, 1): (2, 1), (2, 1): (1, 1)},
        hosts={
            "hA": HostAttachment("hA", "10.0.0.1", 1, 2),
            "hB": HostAttachment("hB", "10.0.0.2", 2, 2),
        },
    )


def probe_packet():
    return tcp_packet("hA", "hB", "10.0.0.1", "10.0.0.2")


class TestTrace:
    def test_delivery_along_installed_path(self):
        snap = snapshot_2sw(
            rules1=[FlowMod(match=Match(eth_dst="hB"), actions=(Output(1),))],
            rules2=[FlowMod(match=Match(eth_dst="hB"), actions=(Output(2),))],
        )
        result = trace(snap, 1, 2, probe_packet())
        assert result.delivered
        assert result.delivered_macs == {"hB"}
        assert result.switches_visited == {1, 2}

    def test_table_miss_is_controller_punt(self):
        snap = snapshot_2sw()
        result = trace(snap, 1, 2, probe_packet())
        assert result.controller_punts == 1
        assert not result.delivered
        assert not result.blackholed

    def test_drop_rule_is_blackhole(self):
        snap = snapshot_2sw(
            rules1=[FlowMod(match=Match(), actions=(Drop(),))])
        result = trace(snap, 1, 2, probe_packet())
        assert result.drops == 1
        assert result.blackholed

    def test_egress_to_dead_port_is_drop(self):
        snap = snapshot_2sw(
            rules1=[FlowMod(match=Match(), actions=(Output(9),))])
        result = trace(snap, 1, 2, probe_packet())
        assert result.drops == 1
        assert result.blackholed

    def test_two_switch_loop_detected(self):
        snap = snapshot_2sw(
            rules1=[FlowMod(match=Match(), actions=(Output(1),))],
            rules2=[FlowMod(match=Match(), actions=(Output(1),))],
        )
        result = trace(snap, 1, 2, probe_packet())
        assert result.looped
        assert not result.blackholed

    def test_flood_reaches_host_and_neighbor(self):
        snap = snapshot_2sw(
            rules1=[FlowMod(match=Match(), actions=(Flood(),))],
            rules2=[FlowMod(match=Match(), actions=(Output(2),))],
        )
        result = trace(snap, 1, 2, probe_packet())
        assert result.delivered_macs == {"hB"}

    def test_two_switch_flood_does_not_loop(self):
        """Flood excludes the ingress port, so two switches cannot
        flood-loop -- the probe is simply delivered."""
        snap = snapshot_2sw(
            rules1=[FlowMod(match=Match(), actions=(Flood(),))],
            rules2=[FlowMod(match=Match(), actions=(Flood(),))],
        )
        result = trace(snap, 1, 2, probe_packet())
        assert not result.looped
        assert result.delivered_macs == {"hB"}

    def test_ring_flood_loop_detected(self):
        """Three flooding switches in a cycle: the classic broadcast storm."""
        tables = {d: FlowTable() for d in (1, 2, 3)}
        for table in tables.values():
            table.apply_flow_mod(
                FlowMod(match=Match(), actions=(Flood(),)), 0.0)
        snap = NetSnapshot(
            tables=tables,
            adjacency={
                (1, 1): (2, 1), (2, 1): (1, 1),
                (2, 2): (3, 1), (3, 1): (2, 2),
                (3, 2): (1, 2), (1, 2): (3, 2),
            },
            hosts={"hA": HostAttachment("hA", "10.0.0.1", 1, 3)},
        )
        result = trace(snap, 1, 3, probe_packet())
        assert result.looped

    def test_to_controller_action_counts_punt(self):
        snap = snapshot_2sw(
            rules1=[FlowMod(match=Match(), actions=(ToController(),))])
        result = trace(snap, 1, 2, probe_packet())
        assert result.controller_punts == 1

    def test_rewrite_affects_downstream_matching(self):
        from repro.openflow.actions import SetEthDst

        snap = snapshot_2sw(
            rules1=[FlowMod(match=Match(),
                            actions=(SetEthDst(eth_dst="hB"), Output(1)))],
            rules2=[FlowMod(match=Match(eth_dst="hB"), actions=(Output(2),))],
        )
        pkt = tcp_packet("hA", "somewhere-else", "10.0.0.1", "10.0.0.9")
        result = trace(snap, 1, 2, pkt)
        assert result.delivered_macs == {"hB"}

    def test_missing_table_is_drop(self):
        snap = snapshot_2sw()
        del snap.tables[2]
        snap.tables[1].apply_flow_mod(
            FlowMod(match=Match(), actions=(Output(1),)), 0.0)
        result = trace(snap, 1, 2, probe_packet())
        assert result.drops == 1


class TestSnapshotBuilders:
    def test_from_network_matches_ground_truth(self):
        net = Network(linear_topology(3, 1), seed=0)
        net.start()
        net.run_for(1.0)
        snap = NetSnapshot.from_network(net)
        assert set(snap.tables) == {1, 2, 3}
        assert len(snap.hosts) == 3
        assert (1, 1) in snap.adjacency

    def test_from_network_excludes_down_links(self):
        net = Network(linear_topology(3, 1), seed=0)
        net.start()
        net.run_for(1.0)
        net.link_down(1, 2)
        snap = NetSnapshot.from_network(net)
        assert (1, 1) not in snap.adjacency

    def test_from_tables_uses_controller_view(self):
        net = Network(linear_topology(2, 1), seed=0)
        runtime = MonolithicRuntime(net.controller)
        runtime.launch_app(LearningSwitch)
        net.start()
        net.run_for(1.5)
        net.ping("h1", "h2")
        snap = NetSnapshot.from_tables(
            {d: s.flow_table for d, s in net.switches.items()},
            net.controller.topology.view(),
            net.controller.devices.all(),
        )
        assert len(snap.hosts) == 2
        assert (1, 1) in snap.adjacency


class TestChecker:
    def test_clean_network_no_violations(self):
        net = Network(linear_topology(2, 1), seed=0)
        runtime = MonolithicRuntime(net.controller)
        runtime.launch_app(LearningSwitch)
        net.start()
        net.run_for(1.0)
        net.reachability()
        snap = NetSnapshot.from_network(net)
        checker = InvariantChecker(snap)
        assert checker.check_all() == []

    def test_loop_violation_reported_critical(self):
        snap = snapshot_2sw(
            rules1=[FlowMod(match=Match(), actions=(Output(1),))],
            rules2=[FlowMod(match=Match(), actions=(Output(1),))],
        )
        checker = InvariantChecker(snap, critical_kinds=("loop",))
        violations = checker.check_all()
        loops = [v for v in violations if v.kind == "loop"]
        assert loops and all(v.critical for v in loops)
        assert checker.has_critical(violations)

    def test_blackhole_violation(self):
        snap = snapshot_2sw(
            rules1=[FlowMod(match=Match(), actions=(Drop(),))])
        checker = InvariantChecker(snap)
        violations = checker.check_blackholes(build_host_probes(snap))
        assert violations
        assert violations[0].kind == "blackhole"
        assert not violations[0].critical

    def test_reachability_not_violated_by_punts(self):
        snap = snapshot_2sw()  # empty tables: everything punts
        checker = InvariantChecker(snap)
        assert checker.check_reachability(build_host_probes(snap)) == []

    def test_waypoint_violation(self):
        # direct path 1->host on same switch, never visits waypoint 2
        snap = snapshot_2sw(
            rules1=[FlowMod(match=Match(), actions=(Output(1),))],
            rules2=[FlowMod(match=Match(), actions=(Output(2),))],
        )
        probes = build_host_probes(snap, pairs=[("hA", "hB")])
        checker = InvariantChecker(snap)
        assert checker.check_waypoint(probes[0], waypoint_dpid=2) == []
        # now a waypoint that is NOT on the path
        snap2 = NetSnapshot(
            tables={1: FlowTable()},
            adjacency={},
            hosts={
                "hA": HostAttachment("hA", "1", 1, 1),
                "hB": HostAttachment("hB", "2", 1, 2),
            },
        )
        snap2.tables[1].apply_flow_mod(
            FlowMod(match=Match(), actions=(Output(2),)), 0.0)
        probes2 = build_host_probes(snap2, pairs=[("hA", "hB")])
        checker2 = InvariantChecker(snap2)
        assert checker2.check_waypoint(probes2[0], waypoint_dpid=99)

    def test_probe_building_skips_unknown_hosts(self):
        snap = snapshot_2sw()
        probes = build_host_probes(snap, pairs=[("hA", "ghost")])
        assert probes == []

    def test_violation_str(self):
        from repro.invariants import Violation

        v = Violation(kind="loop", detail="d", critical=True)
        assert "CRITICAL" in str(v)
