"""Tests for the spanning-tree switching app (loop-free flooding)."""

import pytest

from repro.apps import LearningSwitch, SpanningTreeSwitch
from repro.controller.monolithic import MonolithicRuntime
from repro.core.runtime import LegoSDNRuntime
from repro.invariants import InvariantChecker, NetSnapshot, build_host_probes
from repro.network.net import Network
from repro.network.topology import mesh_topology, ring_topology
from repro.workloads.traffic import TrafficWorkload, inject_marker_packet


def build(topo, runtime_cls=MonolithicRuntime):
    net = Network(topo, seed=0)
    if runtime_cls is MonolithicRuntime:
        runtime = MonolithicRuntime(net.controller)
        runtime.launch_app(SpanningTreeSwitch)
    else:
        runtime = LegoSDNRuntime(net.controller)
        runtime.launch_app(SpanningTreeSwitch())
    net.start()
    net.run_for(1.5)  # discovery must converge before flooding is safe
    return net, runtime


class TestLoopFreedom:
    def test_full_reachability_on_ring(self):
        net, runtime = build(ring_topology(4, 1))
        assert net.reachability(wait=1.5) == 1.0

    def test_full_reachability_on_mesh(self):
        net, runtime = build(mesh_topology(4, 1))
        assert net.reachability(wait=1.5) == 1.0

    def test_no_broadcast_storm_on_ring(self):
        """A broadcast on a ring must visit each switch once-ish, not
        circulate until TTL death (the plain-flood behaviour)."""
        plain_net = Network(ring_topology(4, 1), seed=0)
        plain_rt = MonolithicRuntime(plain_net.controller)
        plain_rt.launch_app(LearningSwitch)
        plain_net.start()
        plain_net.run_for(1.5)
        stp_net, _ = build(ring_topology(4, 1))
        for net in (plain_net, stp_net):
            inject_marker_packet(net, "h1", "h3", "probe")
            net.run_for(1.0)
        plain_tx = sum(l.transmitted for l in plain_net.links)
        stp_tx = sum(l.transmitted for l in stp_net.links)
        # the spanning tree carries far fewer copies
        assert stp_tx < plain_tx

    def test_no_loops_under_sustained_traffic(self):
        net, runtime = build(ring_topology(5, 1))
        TrafficWorkload(net, rate=40, selection="random", seed=3).start(2.0)
        net.run_for(3.0)
        snap = NetSnapshot.from_network(net)
        checker = InvariantChecker(snap)
        assert checker.check_loops(build_host_probes(snap)) == []

    def test_tree_recomputed_on_link_failure(self):
        net, runtime = build(ring_topology(4, 1))
        app = runtime.app("stp_switch")
        assert net.reachability(wait=1.5) == 1.0
        before = app.tree_recomputations
        net.link_down(1, 2)
        net.run_for(1.0)
        # flooding after the failure uses a fresh tree over the arc
        assert net.reachability(wait=2.0) == 1.0
        assert app.tree_recomputations > before

    def test_unicast_still_learned(self):
        net, runtime = build(ring_topology(4, 1))
        net.reachability(wait=1.5)
        app = runtime.app("stp_switch")
        assert app.flows_installed > 0


class TestUnderLegoSDN:
    def test_stp_switch_in_sandbox(self):
        net, runtime = build(ring_topology(4, 1), runtime_cls=LegoSDNRuntime)
        assert net.reachability(wait=2.0) == 1.0
        assert runtime.is_up

    def test_checkpointable(self):
        """The tree caches must survive the checkpoint round trip."""
        import pickle

        app = SpanningTreeSwitch()
        app.mac_tables[1] = {"m": 2}
        app._tree_ports = {1: frozenset({1, 2})}
        state = pickle.loads(pickle.dumps(app.get_state()))
        fresh = SpanningTreeSwitch()
        fresh.set_state(state)
        assert fresh._tree_ports == {1: frozenset({1, 2})}
        assert fresh.mac_tables == {1: {"m": 2}}
