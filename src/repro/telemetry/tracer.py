"""Structured tracing over the simulated clock.

A :class:`Tracer` produces **spans** -- named, tagged intervals of
simulated time -- at the stack's four seams (controller dispatch,
AppVisor RPC, NetLog transactions, Crash-Pad recovery).  Spans nest:
a NetLog transaction opened while the controller is dispatching a
PacketIn records the dispatch span as its parent, so a finished trace
reconstructs the causal timeline of one control-loop transit.

Two span shapes exist because the stack has two kinds of duration:

- synchronous work uses ``with tracer.span(name, **tags):`` (parented
  off the enclosing span via the tracer's stack);
- split-phase work -- an event delivered now and completed by a later
  RPC frame, a recovery started at detection and finished at the
  RestoreAck -- uses :meth:`Tracer.record_span` with an explicit start
  time, since no Python call frame brackets the interval.

Tracing is **off by default**: every instrumented component holds a
:data:`NULL_TRACER` unless the operator opted in, and the null paths
cost one attribute load plus a truthiness check -- cheap enough that
the tier-1 latency benchmarks cannot see the difference.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


def json_safe(value):
    """Coerce a tag value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


@dataclass
class SpanRecord:
    """One finished span: a named, tagged interval of simulated time."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    tags: Dict[str, object] = field(default_factory=dict)
    status: str = "ok"

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "tags": {k: json_safe(v) for k, v in self.tags.items()},
        }


class _NullSpan:
    """The reusable no-op context manager the null tracer hands out."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set_tag(self, key, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Does nothing, as fast as possible.

    Instrumented hot paths check ``tracer.enabled`` before building
    tag dicts, so the disabled cost is one attribute load per seam.
    """

    enabled = False

    def span(self, name: str, **tags) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **tags) -> None:
        pass

    def record_span(self, name: str, start: float, status: str = "ok",
                    **tags) -> None:
        return None

    def to_dicts(self) -> List[dict]:
        return []


#: The shared stateless no-op tracer every component starts with.
NULL_TRACER = NullTracer()


class _ActiveSpan:
    """An open span; finishes (and records itself) on ``__exit__``."""

    __slots__ = ("tracer", "name", "tags", "span_id", "parent_id", "start")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.tags = tags
        self.span_id = next(tracer._ids)
        self.parent_id = None
        self.start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        stack = self.tracer._stack
        self.parent_id = stack[-1].span_id if stack else None
        self.start = self.tracer.clock()
        stack.append(self)
        return self

    def set_tag(self, key, value) -> None:
        self.tags[key] = value

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        status = "ok"
        if exc_type is not None:
            status = "error"
            self.tags.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.tracer._finish(SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start=self.start,
            end=self.tracer.clock(),
            tags=self.tags,
            status=status,
        ))
        return False  # never swallow exceptions


class Tracer:
    """Collects spans and point events against a supplied clock."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 recorder=None, metrics=None, max_spans: int = 20_000,
                 replica_id: Optional[str] = None):
        #: Returns the current (simulated) time; rebindable so the
        #: tracer can be created before the Simulator exists.
        self.clock = clock or (lambda: 0.0)
        #: Optional FlightRecorder mirroring every finished span/event.
        self.recorder = recorder
        #: Optional MetricsCollector fed per-span-name latency series.
        self.metrics = metrics
        self.max_spans = max_spans
        #: Which controller replica produced this trace.  Replicated
        #: deployments run one tracer per replica; merged dumps stay
        #: attributable because every span/event carries the id.
        self.replica_id = replica_id
        self.spans: List[SpanRecord] = []
        self.dropped = 0
        self._stack: List[_ActiveSpan] = []
        self._ids = itertools.count(1)

    # -- producing ---------------------------------------------------------

    def span(self, name: str, **tags) -> _ActiveSpan:
        """Open a nested span; use as a context manager."""
        return _ActiveSpan(self, name, tags)

    def record_span(self, name: str, start: float, status: str = "ok",
                    **tags) -> SpanRecord:
        """Record a split-phase span that started at ``start``.

        Used where no call frame brackets the interval (an event
        completing via a later RPC frame, a recovery finishing at the
        RestoreAck); such spans have no parent.
        """
        record = SpanRecord(
            span_id=next(self._ids), parent_id=None, name=name,
            start=start, end=self.clock(), tags=tags, status=status,
        )
        self._finish(record)
        return record

    def event(self, name: str, **tags) -> None:
        """Record a point-in-time trace event (no duration)."""
        if self.replica_id is not None:
            tags.setdefault("replica", self.replica_id)
        if self.recorder is not None:
            self.recorder.record(self.clock(), "event", name, tags)
        if self.metrics is not None:
            self.metrics.inc(f"trace.events.{name}")

    def _finish(self, record: SpanRecord) -> None:
        if self.replica_id is not None:
            record.tags.setdefault("replica", self.replica_id)
        if len(self.spans) < self.max_spans:
            self.spans.append(record)
        else:
            self.dropped += 1
        if self.recorder is not None:
            flight_tags = dict(record.tags)
            flight_tags["duration"] = record.duration
            if record.status != "ok":
                flight_tags["status"] = record.status
            self.recorder.record(record.end, "span", record.name, flight_tags)
        if self.metrics is not None:
            self.metrics.observe(f"span.{record.name}", record.duration)

    # -- consuming ------------------------------------------------------------

    def spans_named(self, name: str) -> List[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    def span_names(self) -> List[str]:
        """Distinct span names seen, sorted (the covered seams)."""
        return sorted({s.name for s in self.spans})

    def to_dicts(self) -> List[dict]:
        return [s.to_dict() for s in self.spans]
