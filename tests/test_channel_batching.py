"""Batched RPC: coalescing, FIFO across flushes, and crash-tail loss.

The guarantees the batching channel must keep (the reason E6
equivalence and the NetLog rollback tests stay green with batching on
by default at the runtime level):

- frames delivered in send order, across and within batch flushes;
- one datagram (one base_delay, one loss roll) per same-instant burst;
- a sender dying mid-tick loses exactly the unflushed tail -- frames
  already on the wire still arrive, and nothing arrives twice.
"""

from repro.core.appvisor.channel import UdpChannel
from repro.core.appvisor.rpc import FrameBatch, Heartbeat, encode_frame
from repro.network.simulator import Simulator


def beat(seq):
    return Heartbeat(app_name="app", stub_time=0.0, last_seq_done=seq)


def make_channel(sim, **kwargs):
    kwargs.setdefault("batch", True)
    channel = UdpChannel(sim, **kwargs)
    got = []
    channel.proxy_end.on_frame(lambda f: got.append(f.last_seq_done))
    return channel, got


class TestCoalescing:
    def test_same_instant_burst_is_one_datagram(self):
        sim = Simulator()
        channel, got = make_channel(sim)
        for seq in range(5):
            channel.stub_end.send(beat(seq))
        sim.run()
        assert got == [0, 1, 2, 3, 4]
        assert channel.datagrams_delivered == 1
        assert channel.batches_flushed == 1
        assert channel.frames_batched == 5
        assert channel.stub_end.frames_sent == 5

    def test_batch_pays_base_delay_once(self):
        sim = Simulator()
        arrivals = []
        channel = UdpChannel(sim, base_delay=0.01, per_byte_delay=0.0,
                             batch=True)
        channel.proxy_end.on_frame(
            lambda f: arrivals.append(sim.now))
        for seq in range(4):
            channel.stub_end.send(beat(seq))
        sim.run()
        # All four frames land together, one base_delay after the tick.
        assert arrivals == [0.01] * 4

        sim2 = Simulator()
        unbatched = UdpChannel(sim2, base_delay=0.01, per_byte_delay=0.0)
        last = []
        unbatched.proxy_end.on_frame(lambda f: last.append(sim2.now))
        for seq in range(4):
            unbatched.stub_end.send(beat(seq))
        sim2.run()
        assert len(last) == 4  # same frames, but four datagrams
        assert sim2.now >= sim.now

    def test_single_frame_skips_the_batch_wrapper(self):
        sim = Simulator()
        channel, got = make_channel(sim)
        channel.stub_end.send(beat(7))
        sim.run()
        assert got == [7]
        # One frame -> encoded bare, no FrameBatch framing overhead.
        assert channel.bytes_carried == len(encode_frame(beat(7)))


class TestFifoAcrossFlushes:
    def test_order_preserved_across_ticks(self):
        sim = Simulator()
        channel, got = make_channel(sim)
        for tick in range(3):
            sim.schedule(tick * 0.001, lambda t=tick: [
                channel.stub_end.send(beat(t * 10 + i)) for i in range(3)
            ])
        sim.run()
        assert got == [0, 1, 2, 10, 11, 12, 20, 21, 22]

    def test_both_directions_interleave_safely(self):
        sim = Simulator()
        channel = UdpChannel(sim, batch=True)
        to_proxy, to_stub = [], []
        channel.proxy_end.on_frame(lambda f: to_proxy.append(f.last_seq_done))
        channel.stub_end.on_frame(lambda f: to_stub.append(f.last_seq_done))
        for seq in range(3):
            channel.stub_end.send(beat(seq))
            channel.proxy_end.send(beat(100 + seq))
        sim.run()
        assert to_proxy == [0, 1, 2]
        assert to_stub == [100, 101, 102]


class TestCrashMidBatch:
    def test_crash_before_flush_loses_only_the_tail(self):
        sim = Simulator()
        channel, got = make_channel(sim)
        # Tick 0: three frames flushed and on the wire.
        for seq in range(3):
            channel.stub_end.send(beat(seq))
        sim.run()
        # Tick 1: the app enqueues two more, then dies before the
        # flush event fires (same instant, later in the event queue).
        channel.stub_end.send(beat(3))
        channel.stub_end.send(beat(4))
        assert channel.pending_frames("stub") == 2
        assert channel.drop_pending("stub") == 2
        sim.run()
        # Only the unflushed tail is gone; no duplicates of the head.
        assert got == [0, 1, 2]
        assert channel.pending_frames("stub") == 0

    def test_flushed_frames_survive_a_late_crash(self):
        sim = Simulator()
        channel, got = make_channel(sim)
        channel.stub_end.send(beat(0))
        sim.run_until(0.0001)  # flush fired; datagram is in flight
        assert channel.pending_frames("stub") == 0
        channel.drop_pending("stub")  # crash now: nothing left to drop
        sim.run()
        assert got == [0]

    def test_loss_rolls_once_per_batch(self):
        sim = Simulator()
        channel = UdpChannel(sim, batch=True, loss=1.0, seed=1)
        got = []
        channel.proxy_end.on_frame(lambda f: got.append(f))
        for seq in range(6):
            channel.stub_end.send(beat(seq))
        sim.run()
        assert got == []
        # Six frames, one batch, one loss event.
        assert channel.datagrams_lost == 1


class TestCrashPathWiring:
    """The production crash paths actually drop the unflushed tail."""

    def _runtime(self):
        from repro.apps import LearningSwitch
        from repro.controller.core import Controller
        from repro.core.runtime import LegoSDNRuntime

        sim = Simulator()
        controller = Controller(sim)
        runtime = LegoSDNRuntime(controller)
        runtime.launch_app(LearningSwitch())
        sim.run_until(0.5)  # registration + first heartbeats settle
        return sim, controller, runtime

    def test_controller_crash_drops_proxy_side_pending(self):
        sim, controller, runtime = self._runtime()
        channel = runtime.channels["learning_switch"]
        channel.proxy_end.send(beat(1))
        channel.stub_end.send(beat(2))
        assert channel.pending_frames("proxy") == 1
        controller.crash(RuntimeError("die"), culprit="fault-injection")
        # The proxy died mid-tick: its tail is gone, the surviving
        # stub's pending frames are not.
        assert channel.pending_frames("proxy") == 0
        assert channel.pending_frames("stub") == 1

    def test_proxy_shutdown_drops_proxy_side_pending(self):
        sim, controller, runtime = self._runtime()
        channel = runtime.channels["learning_switch"]
        channel.proxy_end.send(beat(2))
        assert channel.pending_frames("proxy") == 1
        runtime.proxy.shutdown()
        assert channel.pending_frames("proxy") == 0


class TestBatchWire:
    def test_frame_batch_roundtrips_through_codec(self):
        frames = tuple(beat(i) for i in range(3))
        batch = FrameBatch(frames=frames)
        from repro.core.appvisor.rpc import decode_frame
        assert decode_frame(encode_frame(batch)) == batch
