"""Byzantine tolerance for the replica set: keys, digests, and the
adaptive mode policy.

PRs 2-8 made the control plane survive crash faults and hostile
channels, but a replica that *lies* -- tampered NetLog records,
equivocating resolves, forged acks -- was still trusted blindly.  This
module supplies the three mechanisms MORPH (Sakic et al.) shows make
Byzantine tolerance affordable in an SDN control plane:

1. **Authenticated shipping** (:class:`ReplicaKeyring`).  Every
   replication frame carries an HMAC stamp computed over its canonical
   packed encoding with a key derived per replica *pair*, so a frame
   can neither be altered in flight nor forged on behalf of another
   replica without detection.  Verification failures are counted
   (``sig_rejected``) and repeated failures raise an
   :class:`AuthFault` -- the replication-layer sibling of the
   channel's ``ChannelFault``.

2. **Output digests** (:func:`resolve_leaf` / :func:`chain_digest`).
   Primary and backups independently fold every committed resolve --
   its sequence number, outcome, and the content of the records it
   commits -- into a running 64-bit chain digest.  Matching digests at
   the same resolve floor mean byte-identical committed histories;
   votes are just these digests piggybacked on the existing ack and
   heartbeat frames, so voting costs no extra datagrams.

3. **Adaptive mode** (:class:`ReplicationModePolicy`).  The set runs
   cheap CRASH_FAULT replication normally and escalates to BYZANTINE
   voting (2f+1 matching digests gate resolve confirmation, conflicting
   minorities are quarantined) when the HealthWatchdog or the set's own
   digest comparison flags divergence or auth anomalies.  A clean
   window de-escalates.  Transitions are epoch-fenced with the same
   :class:`~repro.replication.fence.EpochFence` discipline that guards
   switch writes, so a failover mid-escalation cannot split-brain the
   policy: requests stamped with a superseded epoch are rejected, not
   applied.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.openflow.serialization import encode_value
from repro.replication.fence import EpochFence


# -- quorum math -------------------------------------------------------------

def vote_threshold(f: int) -> int:
    """Votes needed to accept an output while tolerating ``f`` liars.

    Classic BFT arithmetic: ``f`` Byzantine replicas can vote for a
    wrong digest and another ``f`` honest ones may be silent
    (partitioned), so only ``2f + 1`` *matching* votes guarantee a
    majority of honest, current replicas stands behind the answer.
    """
    if f < 0:
        raise ValueError("f must be non-negative")
    return 2 * f + 1


def tolerable_f(n: int) -> int:
    """Largest ``f`` a cohort of ``n`` replicas can tolerate (n >= 3f+1)."""
    return max((n - 1) // 3, 0)


# -- authenticated shipping --------------------------------------------------

#: HMAC output bytes kept on the wire.  64 bits is plenty against the
#: simulated adversary and keeps the per-frame overhead to one small
#: trailing bytes field.
MAC_BYTES = 8


@dataclass(frozen=True)
class AuthFault:
    """Repeated signature failures from one peer -- the replication
    layer's :class:`~repro.core.appvisor.channel.ChannelFault` sibling.

    A single rejected stamp can be wire corruption the reliable layer
    missed; a run of them from the same replica is an authentication
    attack (or a catastrophically wrong key) and is surfaced as a typed
    fault so the failure detector can suspect the *replica*, not the
    channel.
    """

    replica_id: str
    rejections: int
    at: float


class ReplicaKeyring:
    """Per replica-pair HMAC keys over the canonical packed encoding.

    Keys are derived from a set-level secret: ``key(a, b) =
    HMAC(secret, sorted pair ids)``.  Pair keys (rather than one group
    key) mean a compromised replica can forge only frames *it* is a
    party to -- it cannot fabricate traffic between two honest peers.

    The canonical encoding signed is the frame's packed serialisation
    with its ``auth`` field cleared, so the stamp covers every content
    field (epoch included -- a replayed frame cannot be re-badged into
    a newer epoch without the key).
    """

    def __init__(self, secret=0):
        if not isinstance(secret, bytes):
            secret = str(secret).encode()
        self._secret = secret
        self._pair_keys: Dict[Tuple[str, str], bytes] = {}
        #: MACs computed / verified, for overhead accounting.
        self.stamps = 0
        self.verifies = 0

    def pair_key(self, a: str, b: str) -> bytes:
        pair = (a, b) if a <= b else (b, a)
        key = self._pair_keys.get(pair)
        if key is None:
            key = hmac.new(self._secret, f"{pair[0]}|{pair[1]}".encode(),
                           hashlib.sha256).digest()
            self._pair_keys[pair] = key
        return key

    def _mac(self, key: bytes, frame) -> bytes:
        canonical = encode_value(replace(frame, auth=b""))
        return hmac.new(key, canonical, hashlib.sha256).digest()[:MAC_BYTES]

    def stamp(self, frame, sender: str, receiver: str):
        """Return ``frame`` with its ``auth`` field set to the pair MAC."""
        self.stamps += 1
        return replace(
            frame, auth=self._mac(self.pair_key(sender, receiver), frame))

    def verify(self, frame, sender: str, receiver: str) -> bool:
        self.verifies += 1
        expected = self._mac(self.pair_key(sender, receiver), frame)
        return hmac.compare_digest(frame.auth, expected)


# -- output digests ----------------------------------------------------------

def resolve_leaf(resolve_seq: int, outcome: str, records) -> int:
    """Digest of one resolved transaction's committed content.

    Covers the resolve identity and, for each record (in ship-index
    order, so arrival order is irrelevant), the index, target switch,
    message content, inverses, and apply timestamp -- everything a
    backup folds into its shadow.  Deliberately excludes ``epoch``
    (resync re-stamps it) and ``auth``.
    """
    parts = tuple(
        (r.index, r.dpid, encode_value(r.message),
         encode_value(tuple(r.inverses)), r.applied_at)
        for r in sorted(records, key=lambda r: r.index)
    )
    blob = encode_value((resolve_seq, outcome, parts))
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1


def chain_digest(prev: int, leaf: int) -> int:
    """Fold one resolve leaf into the running stream digest."""
    h = hashlib.sha256()
    h.update(prev.to_bytes(8, "big"))
    h.update(leaf.to_bytes(8, "big"))
    # Digests travel in frame fields; keep them inside a signed 64-bit
    # int so every wire codec can carry them.
    return int.from_bytes(h.digest()[:8], "big") >> 1


class DigestLedger:
    """One replica's ordered view of the committed record stream.

    Leaves may arrive out of order (a resolve can overtake the resolve
    before it on a lossy channel); the ledger buffers them and extends
    the chain only contiguously, so two honest replicas that have both
    folded resolves ``1..N`` hold *identical* ``digest`` values no
    matter what the network did in between.
    """

    def __init__(self, history: int = 1024):
        self.floor = 0
        self.digest = 0
        self._pending: Dict[int, int] = {}
        #: resolve_seq -> chain digest after folding it (bounded).
        self.history: Dict[int, int] = {}
        self._history_max = history

    def add(self, resolve_seq: int, leaf: int) -> None:
        if resolve_seq <= self.floor or resolve_seq in self._pending:
            return
        self._pending[resolve_seq] = leaf
        while self.floor + 1 in self._pending:
            self.floor += 1
            self.digest = chain_digest(self.digest,
                                       self._pending.pop(self.floor))
            self.history[self.floor] = self.digest
            if len(self.history) > self._history_max:
                del self.history[min(self.history)]

    def at(self, resolve_seq: int) -> Optional[int]:
        """Chain digest as of ``resolve_seq``, if still remembered."""
        if resolve_seq == 0:
            return 0
        return self.history.get(resolve_seq)

    def reset(self) -> None:
        self.floor = 0
        self.digest = 0
        self._pending.clear()
        self.history.clear()

    def rebase(self, floor: int) -> None:
        """Restart the chain at ``floor`` with digest 0.

        Used at failover: replicas may have missed *different* tails of
        the dead primary's stream, so cross-epoch chain continuity is
        unprovable.  Each epoch gets its own chain rooted at the
        promotion's agreed resolve floor (the view-change analogy), and
        voting resumes from zero there.
        """
        self.floor = floor
        self.digest = 0
        self._pending.clear()
        self.history.clear()
        self.history[floor] = 0


# -- the adaptive mode policy ------------------------------------------------

class ReplicationMode(enum.Enum):
    CRASH_FAULT = "crash"
    BYZANTINE = "byzantine"


@dataclass
class ModeSwitch:
    """One recorded policy transition."""

    mode: ReplicationMode
    at: float
    epoch: int
    reason: str


class ReplicationModePolicy:
    """The CRASH_FAULT <-> BYZANTINE state machine.

    Normally the set runs cheap crash-fault replication; an anomaly
    (digest divergence, auth fault, invariant violation -- whatever the
    watchdog or the set itself reports through :meth:`note_anomaly`)
    escalates to BYZANTINE voting, and ``clean_window`` seconds without
    a further anomaly de-escalates.

    Every transition request carries the caller's epoch and is checked
    against an :class:`EpochFence` that the set advances at each
    failover -- a request computed before a promotion (and delivered
    after) is *fenced*, not applied, so two sides of a failover can
    never disagree about the mode for their epoch.  ``pinned`` disables
    the adaptive machinery for fixed-mode deployments (the benchmark's
    full-time BYZANTINE arm, or an explicit crash-only opt-out).
    """

    def __init__(self, mode: ReplicationMode = ReplicationMode.CRASH_FAULT,
                 clean_window: float = 2.0, pinned: bool = False,
                 fence: Optional[EpochFence] = None):
        self.mode = mode
        self.clean_window = clean_window
        self.pinned = pinned
        self.fence = fence if fence is not None else EpochFence()
        self.switches: List[ModeSwitch] = []
        self.last_anomaly_at = float("-inf")
        self.anomalies_noted = 0
        #: Transition requests rejected for carrying a stale epoch.
        self.fenced_transitions = 0
        #: Called with each ModeSwitch (telemetry wiring).
        self.on_switch: List[Callable[[ModeSwitch], None]] = []

    @property
    def voting(self) -> bool:
        return self.mode is ReplicationMode.BYZANTINE

    @property
    def mode_switches(self) -> int:
        return len(self.switches)

    def advance_epoch(self, epoch: int) -> None:
        """Carry the policy across a failover: the mode survives, but
        requests from the superseded epoch no longer may change it."""
        if not self.fence.try_advance(epoch):
            self.fenced_transitions += 1

    def _switch(self, mode: ReplicationMode, now: float, epoch: int,
                reason: str) -> None:
        self.mode = mode
        record = ModeSwitch(mode=mode, at=now, epoch=epoch, reason=reason)
        self.switches.append(record)
        for callback in list(self.on_switch):
            callback(record)

    def note_anomaly(self, now: float, epoch: int, kind: str,
                     detail: str = "") -> bool:
        """An escalation signal.  Returns True if the mode flipped."""
        if not self.fence.permits(epoch):
            self.fenced_transitions += 1
            return False
        self.anomalies_noted += 1
        self.last_anomaly_at = max(self.last_anomaly_at, now)
        if self.pinned or self.mode is ReplicationMode.BYZANTINE:
            return False
        self._switch(ReplicationMode.BYZANTINE, now, epoch,
                     reason=kind if not detail else f"{kind}: {detail}")
        return True

    def maybe_deescalate(self, now: float, epoch: int) -> bool:
        """Called periodically; drops back to CRASH_FAULT after a clean
        window.  Returns True if the mode flipped."""
        if (self.pinned or self.mode is not ReplicationMode.BYZANTINE
                or now - self.last_anomaly_at < self.clean_window):
            return False
        if not self.fence.permits(epoch):
            self.fenced_transitions += 1
            return False
        self._switch(ReplicationMode.CRASH_FAULT, now, epoch,
                     reason="clean-window")
        return True
