"""E2: control-loop latency overhead of the isolation layer (§3.1).

"We note that serialization and de-serialization of messages, and the
communication protocol overhead introduce additional latency into the
control-loop ... The additional latency, however, is acceptable as
introducing the controller into the critical-path already slows down
the network by a factor of four [11]."

Measured series (simulated time, Hub app so every packet crosses the
control loop):

- **dataplane** -- one-way delivery with pre-installed rules (no
  controller on the path);
- **monolithic** -- reactive delivery through the in-process app;
- **legosdn** -- reactive delivery through proxy/stub RPC (adds
  serialisation + channel + checkpoint costs).

Expected shape: dataplane << monolithic < legosdn; the
reactive/dataplane ratio is >= the paper's 4x; and the *extra*
slowdown LegoSDN adds on top of the monolithic control loop is small
relative to the cost of involving the controller at all.
"""

import statistics

from repro.apps import Flooder, Hub
from repro.network.topology import linear_topology
from repro.workloads.traffic import inject_marker_packet

from benchmarks.harness import build_legosdn, build_monolithic, print_table, run_once

SAMPLES = 20


def _one_way_latencies(net, count=SAMPLES):
    """Send ``count`` fresh packets h1->h2; return delivery latencies.

    Every packet gets a unique payload so reactive runtimes punt every
    one of them (the hub never installs rules anyway; the flooder's
    rules pre-install at switch join).
    """
    h2 = net.host("h2")
    latencies = []
    for i in range(count):
        h2.clear_history()
        start = net.now
        inject_marker_packet(net, "h1", "h2", f"probe-{i}")
        net.run_for(1.0)
        arrivals = [t for t, p in h2.received
                    if not p.is_lldp() and p.payload == f"probe-{i}"]
        if arrivals:
            latencies.append(min(arrivals) - start)
    return latencies


def test_e2_control_loop_latency(benchmark):
    def experiment():
        # dataplane baseline: flooder pre-installs, packets never punt
        data_net, _ = build_monolithic(linear_topology(2, 1), [Flooder])
        dataplane = _one_way_latencies(data_net)
        # monolithic reactive path
        mono_net, _ = build_monolithic(linear_topology(2, 1), [Hub])
        mono = _one_way_latencies(mono_net)
        # legosdn reactive path
        lego_net, lego_rt = build_legosdn(linear_topology(2, 1), [Hub()])
        lego = _one_way_latencies(lego_net)
        channel = lego_rt.channels["hub"]
        return {
            "dataplane": dataplane,
            "monolithic": mono,
            "legosdn": lego,
            "rpc_bytes": channel.bytes_carried,
            "rpc_datagrams": channel.datagrams_delivered,
        }

    r = run_once(benchmark, experiment)
    mean = {k: statistics.mean(v) * 1000
            for k, v in r.items() if isinstance(v, list)}
    rows = [
        ["dataplane only", f"{mean['dataplane']:.3f}", "1.0x"],
        ["monolithic control loop", f"{mean['monolithic']:.3f}",
         f"{mean['monolithic'] / mean['dataplane']:.1f}x"],
        ["LegoSDN control loop", f"{mean['legosdn']:.3f}",
         f"{mean['legosdn'] / mean['dataplane']:.1f}x"],
    ]
    print_table("E2: one-way delivery latency h1->h2 (ms, mean of "
                f"{SAMPLES} probes)", ["path", "latency", "vs dataplane"],
                rows)
    overhead = mean["legosdn"] - mean["monolithic"]
    print(f"AppVisor overhead: +{overhead:.3f} ms per control-loop "
          f"transit ({r['rpc_datagrams']} datagrams, "
          f"{r['rpc_bytes']} bytes on the RPC channel)")
    benchmark.extra_info["mean_ms"] = mean

    assert len(r["dataplane"]) == len(r["monolithic"]) == len(r["legosdn"])
    # Paper's [11] framing: the controller on the critical path costs ~4x.
    assert mean["monolithic"] / mean["dataplane"] >= 1.5
    # Incremental checkpoints + batched RPC cut the LegoSDN transit from
    # ~8.6x dataplane to ~4x; it must stay well above the monolithic
    # path (the isolation layer is not free) without re-asserting the
    # pre-optimisation overhead.
    assert mean["legosdn"] / mean["dataplane"] >= 2.5
    # LegoSDN is strictly slower than monolithic (serialisation + RPC +
    # per-event checkpoint), but the control loop still completes.
    assert mean["legosdn"] > mean["monolithic"]
    assert r["rpc_bytes"] > 0
