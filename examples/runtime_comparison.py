#!/usr/bin/env python3
"""Side-by-side: monolithic FloodLight-style stack vs LegoSDN.

Runs the identical deployment (learning switch + traffic monitor + one
buggy app) and the identical fault workload on both runtimes, then
prints the comparison the paper's Figure 1 implies: same behaviour
when healthy, opposite fates when the bug fires.

Also demonstrates the §3.4 "Controller Upgrades" use case on both.

Run:  python examples/runtime_comparison.py
"""

from repro.apps import FlowMonitor, LearningSwitch
from repro.controller.monolithic import MonolithicRuntime
from repro.core.runtime import LegoSDNRuntime
from repro.core.upgrade import upgrade_legosdn, upgrade_monolithic
from repro.faults import crash_on
from repro.network.net import Network
from repro.network.topology import linear_topology
from repro.workloads.traffic import inject_marker_packet


def build_monolithic():
    net = Network(linear_topology(3, 1), seed=3)
    runtime = MonolithicRuntime(net.controller, auto_restart=True,
                                restart_delay=0.5)
    runtime.launch_app(LearningSwitch)
    runtime.launch_app(FlowMonitor)
    runtime.launch_app(lambda: crash_on(LearningSwitch(name="buggy"),
                                        payload_marker="BOOM"))
    net.start()
    net.run_for(1.5)
    return net, runtime


def build_legosdn():
    net = Network(linear_topology(3, 1), seed=3)
    runtime = LegoSDNRuntime(net.controller)
    runtime.launch_app(LearningSwitch())
    runtime.launch_app(FlowMonitor())
    runtime.launch_app(crash_on(LearningSwitch(name="buggy"),
                                payload_marker="BOOM"))
    net.start()
    net.run_for(1.5)
    return net, runtime


def drill(net, runtime, label):
    print(f"\n--- {label} ---")
    print(f"healthy reachability: {net.reachability(wait=1.5):.0%}")
    monitor = runtime.app("monitor")
    observations_before = monitor.total_observations()
    print(f"monitor has observed {observations_before} packets")

    # Let reactive flows idle out so the poison packet punts, then fire.
    net.run_for(LearningSwitch.IDLE_TIMEOUT + 1.0)
    inject_marker_packet(net, "h1", "h3", "BOOM")
    net.run_for(2.0)
    controller_crashes = len(net.controller.crash_records)
    print(f"after the bug fired: controller crashed "
          f"{controller_crashes} time(s); currently up = "
          f"{not net.controller.crashed}; live apps = "
          f"{runtime.live_apps()}")
    net.run_for(1.0)
    monitor = runtime.app("monitor")  # may be a fresh instance (mono)
    print(f"monitor observations now: {monitor.total_observations()} "
          f"(was {observations_before})")
    print(f"reachability after recovery: {net.reachability(wait=1.0):.0%}")

    # A scheduled controller upgrade (1 second).
    probe = lambda rt: rt.app("monitor").total_observations()
    if isinstance(runtime, MonolithicRuntime):
        report = upgrade_monolithic(net, runtime, 1.0, probe)
    else:
        report = upgrade_legosdn(net, runtime, 1.0, probe)
    verdict = "retained" if report.state_retained else "LOST"
    print(f"upgrade: outage {report.outage:.2f}s, app state {verdict} "
          f"({report.state_before} -> {report.state_after})")


def main():
    mono_net, mono_rt = build_monolithic()
    drill(mono_net, mono_rt, "monolithic (FloodLight-style)")
    lego_net, lego_rt = build_legosdn()
    drill(lego_net, lego_rt, "LegoSDN")

    print("\n--- summary ---")
    mono_bug_crashes = sum(1 for r in mono_net.controller.crash_records
                           if r.culprit != "operator")
    lego_bug_crashes = sum(1 for r in lego_net.controller.crash_records
                           if r.culprit != "operator")
    print(f"monolithic: {mono_bug_crashes} controller crash(es) from app "
          f"bugs, {mono_rt.restart_count} full restart(s), all app state "
          "lost each time")
    print(f"legosdn:    {lego_rt.total_crashes()} app crash(es) contained, "
          f"{lego_rt.total_recoveries()} recovery(ies), controller crashed "
          f"{lego_bug_crashes} time(s) from app bugs")


if __name__ == "__main__":
    main()
