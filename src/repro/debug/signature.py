"""Failure signatures: what "the same failure" means across runs.

A signature normalises the three failure artefacts the stack produces
-- Crash-Pad problem tickets (app failures: crash, hang, byzantine),
controller :class:`~repro.controller.core.CrashRecord` entries, and
the no-failure case -- into one comparable value.  Absolute sim times
are deliberately excluded: a replay schedules events on its own clock,
so two runs reproduce *the same failure* when the failing app, the
failure class, and the exception text agree, not when their timestamps
do.  That exclusion is what makes the replay-determinism contract
("byte-identical signature across runs") checkable with a plain
equality.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class FailureSignature:
    """One run's failure outcome, time-free and comparable."""

    #: "app-failure" (a problem ticket was filed),
    #: "controller-crash" (fate-sharing reached the process), or
    #: "none" (the run finished clean).
    kind: str
    #: The failing app (tickets) or crash culprit (crash records).
    app: str = ""
    #: The ticket's failure class: "fail-stop" | "hang" | "byzantine".
    failure_kind: str = ""
    #: Exception text ("" for silent failures like hangs).
    exception: str = ""

    @property
    def failed(self) -> bool:
        return self.kind != "none"

    def matches(self, other: "FailureSignature") -> bool:
        return self == other

    def to_dict(self) -> dict:
        return asdict(self)

    def describe(self) -> str:
        if not self.failed:
            return "no failure"
        detail = f": {self.exception}" if self.exception else ""
        return f"{self.kind} [{self.failure_kind}] in {self.app}{detail}"

    # -- constructors -----------------------------------------------------

    @classmethod
    def none(cls) -> "FailureSignature":
        return cls(kind="none")

    @classmethod
    def from_ticket(cls, ticket) -> "FailureSignature":
        return cls(kind="app-failure", app=ticket.app_name,
                   failure_kind=ticket.failure_kind,
                   exception=ticket.exception)

    @classmethod
    def from_crash_record(cls, record) -> "FailureSignature":
        return cls(kind="controller-crash", app=record.culprit,
                   failure_kind="fail-stop", exception=record.exception)

    @classmethod
    def from_run(cls, runtime) -> "FailureSignature":
        """The signature of a finished run: first ticket wins, then the
        first controller crash, then clean."""
        tickets = runtime.tickets.all()
        if tickets:
            return cls.from_ticket(tickets[0])
        records = runtime.controller.crash_records
        if records:
            return cls.from_crash_record(records[0])
        return cls.none()
