"""The sustained-load harness (E19).

Synthesises 10^5-10^6-host universes and gravity/hotspot/churn traffic
matrices, drives the full sharded control stack on the simulated clock
for minutes of sim time under a memory ceiling, and reports
events/sec, latency percentiles, bytes/event, and peak RSS -- with a
``--check`` regression gate against a committed baseline.

- :mod:`repro.bench.synth` -- O(1)-memory host universes + traffic mixes;
- :mod:`repro.bench.loadgen` -- the sim-clock PacketIn injector;
- :mod:`repro.bench.hist` -- bounded-memory streaming latency histogram;
- :mod:`repro.bench.harness` -- scenarios, presets, the run loop,
  reports, and the regression gate.

CLI: ``repro bench --preset e19-100k`` (see ``repro bench --help``).
"""

from repro.bench.harness import (
    CODECS,
    PRESETS,
    BenchReport,
    BenchScenario,
    check_report,
    default_memory_probe,
    run_scenario,
)
from repro.bench.hist import StreamingHistogram
from repro.bench.loadgen import LoadGenerator
from repro.bench.synth import HostRef, HostUniverse, TrafficMix

__all__ = [
    "CODECS",
    "PRESETS",
    "BenchReport",
    "BenchScenario",
    "HostRef",
    "HostUniverse",
    "LoadGenerator",
    "StreamingHistogram",
    "TrafficMix",
    "check_report",
    "default_memory_probe",
    "run_scenario",
]
