"""Network-level fault injection: the chaos plane for channels.

The existing injectors (:mod:`repro.faults.bugs`,
:mod:`repro.faults.injector`) break the *application*; this module
breaks the *network underneath it*.  A :class:`ChaosProfile` attaches
to any :class:`~repro.core.appvisor.channel.UdpChannel` (proxy<->stub
RPC or replication shipping alike) and perturbs every datagram put on
the wire:

- **loss** -- independent per-datagram drops, plus **burst loss**
  (a drop opens a window in which several consecutive datagrams die,
  the pattern real congested links actually show);
- **duplication** -- the datagram arrives twice;
- **reordering** -- a datagram is held back ``reorder_delay`` so later
  traffic overtakes it;
- **delay jitter** -- a uniform random extra delay on every delivery;
- **corruption** -- a byte of the payload is flipped in flight
  (exercising codec error handling and the reliable layer's CRC);
- **partitions** -- timed windows in which nothing gets through, in
  one direction or both (the split-brain / heal scenarios E16 and E17
  study).

All randomness flows through the profile's own seeded RNG, so a run
with the same seed and the same profile is bit-identical -- chaos is
deterministic here, which is what makes crash forensics replayable.

Composability: a profile perturbs bytes on the wire and knows nothing
about frames, so it stacks cleanly under batching, the reliable layer,
and app-level :class:`~repro.faults.injector.FaultyApp` injection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class PartitionWindow:
    """A timed interval during which the link drops everything.

    ``side`` restricts the partition to datagrams *sent by* that side
    ("proxy" or "stub" for RPC channels, "primary"-facing sides map the
    same way on replication channels); ``None`` cuts both directions.
    """

    start: float
    end: float
    side: Optional[str] = None

    def covers(self, now: float, side: str) -> bool:
        if not (self.start <= now < self.end):
            return False
        return self.side is None or self.side == side


class ChaosProfile:
    """Seeded, composable datagram perturbation.

    Probabilities are independent per datagram and evaluated in a fixed
    order (partition, loss, burst, duplicate, corrupt, reorder, jitter)
    so that a given seed always produces the same fault schedule.
    """

    def __init__(self, seed: int = 0, *,
                 loss: float = 0.0,
                 burst_loss: float = 0.0,
                 burst_len: int = 4,
                 duplicate: float = 0.0,
                 reorder: float = 0.0,
                 reorder_delay: float = 0.002,
                 jitter: float = 0.0,
                 corrupt: float = 0.0):
        self.seed = seed
        self.rng = random.Random(seed)
        self.loss = loss
        #: Probability a datagram *opens* a loss burst; while a burst is
        #: live, every datagram (either direction) is dropped.
        self.burst_loss = burst_loss
        self.burst_len = burst_len
        self.duplicate = duplicate
        self.reorder = reorder
        self.reorder_delay = reorder_delay
        #: Max uniform extra delay added to every delivery.
        self.jitter = jitter
        self.corrupt = corrupt
        self.partitions: List[PartitionWindow] = []
        self._burst_remaining = 0
        # Observability: what the profile actually did.
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.corrupted = 0
        self.partition_drops = 0

    # -- configuration -----------------------------------------------------

    def partition(self, start: float, duration: float,
                  side: Optional[str] = None) -> PartitionWindow:
        """Cut the link during ``[start, start + duration)``."""
        window = PartitionWindow(start=start, end=start + duration,
                                 side=side)
        self.partitions.append(window)
        return window

    def is_partitioned(self, now: float, side: str) -> bool:
        return any(w.covers(now, side) for w in self.partitions)

    # -- the hook ----------------------------------------------------------

    def perturb(self, now: float, side: str,
                data: bytes) -> List[Tuple[float, bytes]]:
        """Decide the fate of one datagram sent by ``side`` at ``now``.

        Returns a list of ``(extra_delay, payload)`` deliveries: empty
        means dropped, two entries mean duplicated, and a payload may
        come back corrupted.  The channel charges transmission once and
        schedules each delivery independently.
        """
        if self.is_partitioned(now, side):
            self.partition_drops += 1
            self.dropped += 1
            return []
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            self.dropped += 1
            return []
        if self.loss > 0 and self.rng.random() < self.loss:
            self.dropped += 1
            return []
        if self.burst_loss > 0 and self.rng.random() < self.burst_loss:
            # This datagram opens the burst and is its first casualty.
            self._burst_remaining = max(0, self.burst_len - 1)
            self.dropped += 1
            return []
        payload = data
        if self.corrupt > 0 and self.rng.random() < self.corrupt:
            payload = self._flip_byte(payload)
            self.corrupted += 1
        base = 0.0
        if self.reorder > 0 and self.rng.random() < self.reorder:
            # Held back: anything sent in the next reorder_delay
            # overtakes it.
            base = self.reorder_delay * (1.0 + self.rng.random())
            self.reordered += 1
        if self.jitter > 0:
            base += self.rng.random() * self.jitter
        deliveries = [(base, payload)]
        if self.duplicate > 0 and self.rng.random() < self.duplicate:
            extra = base + self.rng.random() * max(
                self.jitter, self.reorder_delay)
            deliveries.append((extra, payload))
            self.duplicated += 1
        return deliveries

    def _flip_byte(self, data: bytes) -> bytes:
        if not data:
            return data
        pos = self.rng.randrange(len(data))
        flipped = data[pos] ^ (1 << self.rng.randrange(8))
        return data[:pos] + bytes((flipped,)) + data[pos + 1:]

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "corrupted": self.corrupted,
            "partition_drops": self.partition_drops,
        }


def install(channel, profile: ChaosProfile) -> ChaosProfile:
    """Attach ``profile`` to ``channel`` and return it.

    Sugar for ``channel.chaos = profile`` that reads like what it is in
    experiment scripts.
    """
    channel.chaos = profile
    return profile
