"""E14: dealing with concurrency (§5).

"SDN-Apps, being event-driven, can handle multiple events in parallel
if they [arrive] from multiple switches.  Fortunately, these events
are often handled by different threads and thus we can pin-point which
event causes the thread to crash.  Furthermore, we can correlate the
output of this thread to the input."

The proxy's concurrency lanes implement this: one in-flight event per
originating switch.  Measured:

- **throughput**: time to drain a burst of one event per switch
  through a reactive app (serial vs lanes), sweeping switch count;
- **attribution**: with four events in flight, the one that crashes is
  pinpointed, its transaction alone is rolled back, and the other
  lanes' events are re-delivered (none lost).

Expected shape: drain time is ~flat in switch count with lanes and
~linear without (the per-event checkpoint + RPC round trip dominates);
crash recovery under concurrency loses zero innocent events.
"""

from repro.apps import FlowMonitor, Hub
from repro.faults import crash_on
from repro.network.net import Network
from repro.network.topology import linear_topology
from repro.core.runtime import LegoSDNRuntime
from repro.workloads.traffic import inject_marker_packet

from benchmarks.harness import print_table, run_once

SWITCH_COUNTS = (2, 4, 6, 8)


def _drain_time(switches, parallel):
    net = Network(linear_topology(switches, 1), seed=0)
    runtime = LegoSDNRuntime(net.controller, parallel_lanes=parallel)
    runtime.launch_app(Hub())
    net.start()
    net.run_for(1.0)
    names = sorted(net.hosts)
    start = net.now
    for i, src in enumerate(names):
        inject_marker_packet(net, src, names[(i + 1) % len(names)],
                             f"b-{src}")
    record = runtime.record("hub")
    # Poll well below the per-event cost (~2.4 ms with incremental
    # checkpoints) or quantisation drowns the serial-vs-lanes signal.
    while net.now - start < 10.0 and record.events_completed < switches:
        net.run_for(0.0005)
    return net.now - start


def _crash_attribution():
    net = Network(linear_topology(4, 1), seed=0)
    runtime = LegoSDNRuntime(net.controller, parallel_lanes=True)
    runtime.launch_app(
        crash_on(FlowMonitor(name="app"), payload_marker="BOOM"))
    net.start()
    net.run_for(1.0)
    names = sorted(net.hosts)
    inject_marker_packet(net, names[0], names[1], "BOOM")
    for src, dst in ((names[1], names[2]), (names[2], names[3]),
                     (names[3], names[0])):
        inject_marker_packet(net, src, dst, f"innocent-{src}")
    net.run_for(3.0)
    record = runtime.record("app")
    pairs = runtime.app("app").inner.pair_packets
    innocents_observed = sum(
        count for (src, dst), count in pairs.items())
    ticket = (runtime.tickets.for_app("app")[0]
              if runtime.tickets.for_app("app") else None)
    return {
        "crashes": record.crash_count,
        "recovered": record.recoveries >= record.crash_count,
        "innocents_observed": innocents_observed,
        "offending_pinpointed": (ticket is not None
                                 and "BOOM" in ticket.offending_event),
    }


def test_e14_concurrency_lanes(benchmark):
    def experiment():
        sweep = []
        for switches in SWITCH_COUNTS:
            sweep.append({
                "switches": switches,
                "serial": _drain_time(switches, parallel=False),
                "lanes": _drain_time(switches, parallel=True),
            })
        return {"sweep": sweep, "attribution": _crash_attribution()}

    r = run_once(benchmark, experiment)
    print_table(
        "E14: burst drain time, one fresh event per switch (ms)",
        ["switches", "serial", "lanes", "speedup"],
        [[row["switches"],
          f"{row['serial'] * 1000:.1f}",
          f"{row['lanes'] * 1000:.1f}",
          f"{row['serial'] / row['lanes']:.1f}x"]
         for row in r["sweep"]],
    )
    a = r["attribution"]
    print(f"attribution under 4-way concurrency: crashes={a['crashes']}, "
          f"offending pinpointed={a['offending_pinpointed']}, "
          f"innocent events observed={a['innocents_observed']}, "
          f"recovered={a['recovered']}")
    benchmark.extra_info["results"] = r

    by_n = {row["switches"]: row for row in r["sweep"]}
    # Lanes overlap the per-event pipeline latency: real speedups that
    # grow with switch count.
    assert by_n[4]["serial"] / by_n[4]["lanes"] > 1.5
    assert (by_n[8]["serial"] / by_n[8]["lanes"]
            > by_n[2]["serial"] / by_n[2]["lanes"])
    # Serial drain grows ~linearly with switches; lanes stay ~flat.
    # The first event of a drain pays the chain-opening full
    # checkpoint (a constant ~10 ms), so compare marginal growth
    # rather than the raw n=8/n=2 ratio.
    serial_growth = by_n[8]["serial"] - by_n[2]["serial"]
    lanes_growth = by_n[8]["lanes"] - by_n[2]["lanes"]
    assert serial_growth > 0.010  # 6 extra events, >=2 ms each
    assert lanes_growth < serial_growth / 3
    assert by_n[8]["lanes"] < by_n[2]["lanes"] * 2.5
    # Attribution: the crash was pinpointed, the app recovered, and the
    # innocent in-flight events were not lost.
    assert a["crashes"] >= 1 and a["recovered"]
    assert a["offending_pinpointed"]
    assert a["innocents_observed"] >= 3
