"""Tests for the controller replication layer: log shipping, lease
failover, epoch fencing, orphan rollback, and stub adoption."""

import pytest

from repro.apps import LearningSwitch
from repro.core.runtime import LegoSDNRuntime
from repro.network.net import Network
from repro.network.topology import linear_topology
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.replication import (
    EpochFence,
    RecordShip,
    ReplicaRole,
    ReplicaSet,
)
from repro.telemetry import Telemetry
from repro.workloads import TrafficWorkload
from repro.workloads.traffic import inject_marker_packet


def build(backups=1, switches=2, telemetry=None, **kwargs):
    net = Network(linear_topology(switches, 1), seed=0, telemetry=telemetry)
    runtime = LegoSDNRuntime(net.controller)
    replicas = ReplicaSet(net, runtime, backups=backups, **kwargs)
    runtime.launch_app(LearningSwitch())
    net.start()
    net.run_for(1.0)
    return net, runtime, replicas


class TestConstruction:
    def test_requires_a_backup(self):
        net = Network(linear_topology(2, 1), seed=0)
        runtime = LegoSDNRuntime(net.controller)
        with pytest.raises(ValueError):
            ReplicaSet(net, runtime, backups=0)

    def test_lease_must_exceed_heartbeat(self):
        net = Network(linear_topology(2, 1), seed=0)
        runtime = LegoSDNRuntime(net.controller)
        with pytest.raises(ValueError):
            ReplicaSet(net, runtime, heartbeat_interval=0.2,
                       lease_timeout=0.1)

    def test_initial_roles_and_fence(self):
        net, runtime, replicas = build(backups=2)
        assert replicas.primary.replica_id == "r0"
        assert [r.replica_id for r in replicas.live_backups()] == ["r1", "r2"]
        assert all(s.fence is replicas.fence for s in net.switches.values())
        assert replicas.epoch == 0


class TestShipping:
    def test_backups_receive_committed_records(self):
        net, runtime, replicas = build()
        net.reachability(wait=0.5)  # bidirectional pings install flows
        net.run_for(1.0)
        backup = replicas.replica("r1")
        assert replicas.ship_index > 0
        assert backup.ships_received == replicas.ship_index
        assert backup.log, "no committed records folded on the backup"
        assert not backup.open_txns

    def test_backup_shadow_matches_primary_shadow(self):
        net, runtime, replicas = build()
        TrafficWorkload(net, rate=30.0, seed=0).start(2.0)
        net.run_for(3.0)  # includes settle time past the last ship
        assert replicas.shadow_divergence("r1") == 0

    def test_heartbeats_carry_app_progress_and_acks(self):
        net, runtime, replicas = build()
        net.reachability(wait=0.5)
        net.run_for(1.0)
        backup = replicas.replica("r1")
        assert "learning_switch" in backup.app_progress
        assert backup.acked_index == replicas.ship_index


class TestFailover:
    def test_crash_promotes_lowest_backup(self):
        net, runtime, replicas = build(backups=2, lease_timeout=0.2)
        inject_marker_packet(net, "h1", "h2", "flow-a")
        net.run_for(0.5)
        replicas.crash_primary()
        net.run_for(1.0)
        assert len(replicas.failovers) == 1
        fo = replicas.failovers[0]
        assert (fo.from_replica, fo.to_replica) == ("r0", "r1")
        assert replicas.primary.replica_id == "r1"
        assert replicas.epoch == 1
        assert replicas.replica("r0").role is ReplicaRole.DEAD
        # Detection is lease-bounded.
        assert fo.duration <= 0.2 + 3 * replicas.check_interval

    def test_second_failover_promotes_next_backup(self):
        net, runtime, replicas = build(backups=2, lease_timeout=0.2)
        replicas.crash_primary()
        net.run_for(1.0)
        replicas.crash_primary()
        net.run_for(1.0)
        assert replicas.primary.replica_id == "r2"
        assert replicas.epoch == 2
        assert len(replicas.failovers) == 2

    def test_no_backup_left_stops_failing_over(self):
        net, runtime, replicas = build(backups=1, lease_timeout=0.2)
        replicas.crash_primary()
        net.run_for(1.0)
        replicas.crash_primary()
        net.run_for(1.0)
        # The last primary died with nobody left to promote: it keeps
        # the title, but the set knows it is not serving.
        assert replicas.primary.replica_id == "r1"
        assert not replicas.primary.is_live
        assert not replicas.live_backups()
        assert replicas.epoch == 1  # nothing left to promote
        assert len(replicas.failovers) == 1

    def test_app_survives_with_state(self):
        net, runtime, replicas = build(lease_timeout=0.2)
        inject_marker_packet(net, "h1", "h2", "flow-a")
        net.run_for(0.5)
        stub = runtime.stubs["learning_switch"]
        seq_before = stub.last_seq_done
        macs_before = {d: dict(t) for d, t in stub.app.mac_tables.items()}
        assert any(macs_before.values()), "nothing learned pre-crash"
        replicas.crash_primary()
        net.run_for(1.0)
        new_runtime = replicas.runtime
        assert new_runtime is not runtime
        assert new_runtime.live_apps() == ["learning_switch"]
        # Same stub object, same state, seq numbering resumed.
        assert new_runtime.stubs["learning_switch"] is stub
        for dpid, table in macs_before.items():
            for mac, port in table.items():
                assert stub.app.mac_tables[dpid].get(mac) == port
        inject_marker_packet(net, "h2", "h1", "flow-b")
        net.run_for(1.0)
        assert stub.last_seq_done > seq_before

    def test_crash_drops_unflushed_replication_batch(self):
        # A primary dying mid-tick loses exactly the batched frames it
        # never flushed: nothing it enqueued in its final instant may
        # reach a backup after the process is gone.
        net, runtime, replicas = build(lease_timeout=0.2)
        backup = replicas.replica("r1")
        ships_before = backup.ships_received
        frame = RecordShip(epoch=replicas.epoch,
                           index=replicas.ship_index + 1,
                           txn_id=999, app_name="learning_switch",
                           dpid=1, message=None, inverses=(),
                           applied_at=net.now)
        backup.channel.proxy_end.send(frame)
        assert backup.channel.pending_frames("proxy") == 1
        replicas.crash_primary()
        assert backup.channel.pending_frames("proxy") == 0
        net.run_for(1.0)
        assert backup.ships_received == ships_before
        assert 999 not in backup.open_txns

    def test_failover_drops_unflushed_batch_from_partitioned_primary(self):
        # The partition path never fires the crash callback; the drop
        # happens at failover, while the backups' channels still point
        # at the demoted primary.
        net, runtime, replicas = build(lease_timeout=0.2)
        net.run_for(0.5)
        replicas.partition_primary()
        backup = replicas.replica("r1")
        backup.channel.proxy_end.send(RecordShip(
            epoch=replicas.epoch, index=replicas.ship_index + 1,
            txn_id=998, app_name="learning_switch", dpid=1,
            message=None, inverses=(), applied_at=net.now))
        old_channel = backup.channel
        replicas._failover(backup)
        assert old_channel.pending_frames("proxy") == 0
        net.run_for(1.0)
        assert 998 not in replicas.replica("r1").open_txns

    def test_failover_span_and_metrics(self):
        telemetry = Telemetry(enabled=True)
        net, runtime, replicas = build(telemetry=telemetry, lease_timeout=0.2)
        replicas.crash_primary()
        net.run_for(1.0)
        tracer = replicas.primary.telemetry.tracer
        spans = [s for s in tracer.spans if s.name == "replication.failover"]
        assert len(spans) == 1
        assert spans[0].tags["to_replica"] == "r1"
        assert spans[0].duration == replicas.failovers[0].duration

    def test_zero_divergence_after_failover_under_traffic(self):
        telemetry = Telemetry(enabled=True)
        net, runtime, replicas = build(telemetry=telemetry, switches=3,
                                       lease_timeout=0.2)
        TrafficWorkload(net, rate=30.0, seed=0).start(4.0)
        net.run_for(1.0)
        replicas.crash_primary()
        net.run_for(3.5)
        assert replicas.divergence() == 0


class TestFencing:
    def test_fence_validates_epochs(self):
        fence = EpochFence(epoch=3)
        assert fence.permits(None)   # unreplicated writers are exempt
        assert fence.permits(3)
        assert not fence.permits(2)
        with pytest.raises(ValueError):
            fence.advance(2)

    def test_partitioned_primary_cannot_write(self):
        net, runtime, replicas = build(lease_timeout=0.2)
        net.run_for(0.5)
        replicas.partition_primary()
        net.run_for(1.0)
        assert replicas.primary.replica_id == "r1"
        zombie = replicas.replica("r0").controller
        fenced_before = replicas.fence.fenced_writes
        table_before = len(net.switch(1).flow_table)
        zombie.send_to_switch(1, FlowMod(
            match=Match(eth_dst="evil"), command=FlowModCommand.ADD,
            priority=5000, actions=(Output(1),)))
        net.run_for(0.2)
        assert replicas.fence.fenced_writes > fenced_before
        assert len(net.switch(1).flow_table) == table_before
        assert replicas.fence.rejections[-1][0] == 1

    def test_stale_frames_dropped_by_promoted_replica(self):
        net, runtime, replicas = build(lease_timeout=0.2)
        backup = replicas.replica("r1")
        replicas.crash_primary()
        net.run_for(1.0)
        stale = RecordShip(epoch=0, index=99, txn_id=7, app_name="x",
                           dpid=1, message=None, inverses=(),
                           applied_at=net.now)
        before = backup.stale_frames
        replicas._on_backup_frame(backup, stale)
        assert backup.stale_frames == before + 1
        assert 7 not in backup.open_txns


class TestOrphanRollback:
    def test_unresolved_txn_rolled_back_on_promotion(self):
        net, runtime, replicas = build(lease_timeout=0.2)
        backup = replicas.replica("r1")
        # A transaction the primary opened but never resolved: the ADD
        # reached switch 1 and shipped, the resolve never came.
        mod = FlowMod(match=Match(eth_dst="orphan"),
                      command=FlowModCommand.ADD,
                      priority=700, actions=(Output(1),))
        inverse = FlowMod(match=Match(eth_dst="orphan"),
                          command=FlowModCommand.DELETE_STRICT,
                          priority=700, actions=())
        net.controller.send_to_switch(1, mod)
        net.run_for(0.1)
        assert net.switch(1).flow_table.find(Match(eth_dst="orphan"), 700)
        replicas._on_backup_frame(backup, replicas.keyring.stamp(RecordShip(
            epoch=0, index=replicas.ship_index + 1, txn_id=12345,
            app_name="learning_switch", dpid=1, message=mod,
            inverses=(inverse,), applied_at=net.now), "r0", "r1"))
        assert 12345 in backup.open_txns
        replicas.crash_primary()
        net.run_for(1.0)
        fo = replicas.failovers[0]
        assert fo.orphan_txns == 1
        assert fo.orphan_inverses == 1
        assert not backup.open_txns
        # The inverse reached the switch: the half-done write is gone.
        assert not net.switch(1).flow_table.find(Match(eth_dst="orphan"), 700)


class TestStatsReconcile:
    def test_poll_refreshes_shadow_idle_clocks(self):
        net, runtime, replicas = build(stats_interval=0.1)
        manager = runtime.proxy.manager
        # A rule the data plane keeps alive but whose shadow clock the
        # controller cannot refresh on its own.
        net.controller.send_to_switch(1, FlowMod(
            match=Match(eth_dst="hot"), command=FlowModCommand.ADD,
            priority=10, idle_timeout=0.5, actions=(Output(1),)))
        net.run_for(0.2)
        shadow = manager.shadow_table(1)
        [entry] = shadow.find(Match(eth_dst="hot"), 10)
        real = net.switch(1).flow_table.find(Match(eth_dst="hot"), 10)[0]
        installed = entry.installed_at
        for _ in range(8):
            net.run_for(0.3)
            real.hit(object(), net.now)  # data-plane traffic
        # Lazy expiry alone would have dropped it after 0.5s idle; the
        # stats poll kept the shadow's clock tracking the switch's.
        assert manager.shadow_table(1).find(Match(eth_dst="hot"), 10)
        assert entry.installed_at == installed


class TestPartitionHealResync:
    """A backup cut off long enough to exhaust the shipping channel's
    retry budgets must detect its lag on heal and repair via *ranged*
    replay -- never by waiting for repair that will not come."""

    def _partitioned_build(self, partition=(0.4, 1.3), backups=2):
        from repro.faults.netfaults import ChaosProfile

        # Shipping on this topology+workload spreads over ~0.1-0.9s,
        # so the window cuts the stream mid-flight: records shipped
        # before it must NOT be replayed (ranged, not full-log).
        profile = ChaosProfile(seed=0)
        profile.partition(partition[0], partition[1] - partition[0])
        net = Network(linear_topology(3, 2), seed=0)
        runtime = LegoSDNRuntime(net.controller)
        replicas = ReplicaSet(
            net, runtime, backups=backups, repl_retry_budget=3,
            lease_timeout=30.0,  # isolate: the partitioned candidate
            # cannot tell "primary dead" from "my link dead" -- a short
            # lease would make it self-promote mid-test.
            chaos=lambda rid: profile if rid == "r1" else None)
        runtime.launch_app(LearningSwitch())
        net.start()
        return net, runtime, replicas, profile

    def test_healed_backup_resyncs_to_zero_lag(self):
        net, runtime, replicas, profile = self._partitioned_build()
        TrafficWorkload(net, rate=60.0, seed=0).start(2.5)
        net.run_for(3.5)
        backup = replicas.replica("r1")
        assert profile.partition_drops > 0, "partition never bit"
        assert backup.resync_requests > 0
        assert replicas.resyncs_served > 0
        # Fully repaired: contiguous coverage of the shipped log.
        assert backup.contig_index == replicas.ship_index
        assert backup.contig_resolves == replicas.resolve_count
        assert not backup.open_txns

    def test_resync_is_ranged_not_full_log(self):
        net, runtime, replicas, profile = self._partitioned_build()
        TrafficWorkload(net, rate=60.0, seed=0).start(2.5)
        net.run_for(3.5)
        # The replay shipped strictly less than the whole history:
        # everything shipped before the partition was never re-sent.
        assert 0 < replicas.resync_records_sent < len(replicas.ship_history)

    def test_resynced_backup_shadow_matches_primary(self):
        net, runtime, replicas, profile = self._partitioned_build()
        TrafficWorkload(net, rate=60.0, seed=0).start(2.5)
        net.run_for(3.5)
        assert replicas.shadow_divergence("r1") == 0

    def test_unpartitioned_backup_never_requests_resync(self):
        net, runtime, replicas, profile = self._partitioned_build()
        TrafficWorkload(net, rate=60.0, seed=0).start(2.5)
        net.run_for(3.5)
        untouched = replicas.replica("r2")
        assert untouched.resync_requests == 0
        assert untouched.contig_index == replicas.ship_index


class TestQuorumCommit:
    def test_majority_ack_commits(self):
        net, runtime, replicas = build(backups=2, quorum=True)
        net.reachability(wait=0.5)
        net.run_for(1.0)
        assert replicas.resolve_count > 0
        assert replicas.quorum_commits > 0
        assert replicas.quorum_stalls == 0
        assert not replicas.quorum_degraded
        assert not replicas._pending_quorum

    def test_quorum_needs_majority_not_all(self):
        # 1 primary + 2 backups: majority is 2, so one dead backup
        # must not stall commits.
        net, runtime, replicas = build(backups=2, quorum=True)
        replicas.replica("r2").controller.crash(
            RuntimeError("backup dies"), culprit="fault-injection")
        replicas.replica("r2").role = ReplicaRole.DEAD
        net.reachability(wait=0.5)
        net.run_for(1.0)
        assert replicas.quorum_commits > 0
        assert replicas.quorum_stalls == 0

    def test_quorum_unreachable_degrades_gracefully(self):
        from repro.faults.netfaults import ChaosProfile

        profiles = {}

        def chaos(rid):
            profile = ChaosProfile(seed=0)
            profile.partition(0.4, 10.0)  # all backups dark, forever
            profiles[rid] = profile
            return profile

        net = Network(linear_topology(3, 2), seed=0)
        runtime = LegoSDNRuntime(net.controller)
        replicas = ReplicaSet(net, runtime, backups=2, quorum=True,
                              quorum_timeout=0.2, repl_retry_budget=2,
                              lease_timeout=30.0,  # isolate: no failover
                              chaos=chaos)
        runtime.launch_app(LearningSwitch())
        net.start()
        TrafficWorkload(net, rate=60.0, seed=0).start(1.5)
        net.run_for(3.0)
        # Commits kept happening (availability), but durability is
        # flagged as degraded and the stalls are counted.
        assert replicas.quorum_stalls > 0
        assert replicas.quorum_degraded
        assert not replicas._pending_quorum
        assert runtime.proxy.manager.committed > 0

    def test_async_mode_never_tracks_quorum(self):
        net, runtime, replicas = build()
        net.reachability(wait=0.5)
        net.run_for(1.0)
        assert replicas.quorum_commits == 0
        assert not replicas._pending_quorum


class TestReplicationTelemetryExport:
    def test_resync_and_quorum_counters_reach_prometheus(self):
        from repro.faults.netfaults import ChaosProfile
        from repro.telemetry.export import prometheus_text

        profile = ChaosProfile(seed=0)
        profile.partition(0.4, 0.9)
        telemetry = Telemetry(enabled=True)
        net = Network(linear_topology(3, 2), seed=0, telemetry=telemetry)
        runtime = LegoSDNRuntime(net.controller)
        replicas = ReplicaSet(
            net, runtime, backups=2, quorum=True, quorum_timeout=0.2,
            repl_retry_budget=2, lease_timeout=30.0,
            chaos=lambda rid: profile)  # both backups cut: quorum stalls
        runtime.launch_app(LearningSwitch())
        net.start()
        TrafficWorkload(net, rate=60.0, seed=0).start(2.5)
        net.run_for(3.5)
        assert replicas.resyncs_served > 0
        assert replicas.quorum_stalls > 0
        text = prometheus_text(telemetry.metrics)
        assert "repro_replication_resyncs_total" in text
        assert "repro_replication_quorum_commits_total" in text
        assert "repro_replication_quorum_stalls_total" in text
