"""The replica set: one primary controller, N warm backups, failover.

Modelled on SMaRtLight's primary-backup design: a single controller
serves the network at any time; backups stay warm by consuming the
primary's shipped NetLog records; a lease-based failure detector
promotes the lowest-id live backup when the primary goes silent.  Every
promotion advances a monotonic *epoch* that fences the previous primary
out of the switches (:mod:`repro.replication.fence`), so even a primary
that is partitioned -- alive, but unheard -- cannot mutate network
state after it has been superseded.

Division of labour with the rest of LegoSDN: Crash-Pad still handles
*SDN-App* failures on whichever replica is primary (nothing in the
recovery path changes); the ReplicaSet handles *controller* failures,
which previously required a cold reboot and lost all app state.  The
AppVisor stubs -- separate fault domains by construction -- survive the
controller's death and re-attach to the promoted backup's proxy with
their checkpoints and journals intact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from repro.controller.core import Controller
from repro.core.runtime import LegoSDNRuntime
from repro.core.appvisor.channel import UdpChannel
from repro.openflow.flowtable import FlowTable
from repro.openflow.messages import FlowStatsRequest
from repro.replication.byzantine import (
    AuthFault,
    DigestLedger,
    ReplicaKeyring,
    ReplicationMode,
    ReplicationModePolicy,
    resolve_leaf,
    tolerable_f,
    vote_threshold,
)
from repro.replication.fence import EpochFence
from repro.replication.frames import (
    AppDelta,
    RecordShip,
    ReplAck,
    ReplHeartbeat,
    ResyncRequest,
    TxnResolve,
)
from repro.telemetry import Telemetry


class ReplicaRole(enum.Enum):
    PRIMARY = "primary"
    BACKUP = "backup"
    DEAD = "dead"


@dataclass
class ControllerReplica:
    """One controller instance in the set, plus its replication state."""

    replica_id: str
    controller: Controller
    telemetry: Telemetry
    role: ReplicaRole
    #: The serving runtime (primary only; None while a warm backup).
    runtime: Optional[LegoSDNRuntime] = None
    #: Replication channel to the current primary (backups only).
    channel: Optional[UdpChannel] = None
    #: Committed NetLog records, in fold order (the replayable tail).
    log: List[RecordShip] = field(default_factory=list)
    #: Shipped records of transactions not yet resolved -- the orphans
    #: a promotion must roll back if the primary dies mid-transaction.
    open_txns: Dict[int, List[RecordShip]] = field(default_factory=dict)
    #: Replicated shadow flow tables (committed state only).
    shadow: Dict[int, FlowTable] = field(default_factory=dict)
    #: Per-app progress from the latest heartbeat's app deltas.
    app_progress: Dict[str, AppDelta] = field(default_factory=dict)
    last_heartbeat: float = 0.0
    last_ship_index: int = 0
    ships_received: int = 0
    #: Frames dropped because they carried a superseded epoch (or
    #: arrived after this replica stopped being a backup).
    stale_frames: int = 0
    #: Primary-side view: highest log index this backup has acked.
    acked_index: int = 0
    #: Primary-side view: highest resolve count this backup has acked
    #: (quorum mode counts commits durable off this).
    acked_resolves: int = 0
    #: Every ship index this backup has seen (dedup for resync replay).
    seen_indices: Set[int] = field(default_factory=set)
    #: Highest N such that every index 1..N has been seen -- the
    #: high-water mark a ResyncRequest replays from.
    contig_index: int = 0
    #: Every resolve_seq this backup has processed (dedup; txn_id is
    #: NOT usable for this -- it restarts with each promoted primary).
    seen_resolve_seqs: Set[int] = field(default_factory=set)
    #: Highest N with every resolve_seq 1..N processed.
    contig_resolves: int = 0
    #: Re-shipped frames discarded because this backup already had them.
    resync_dups: int = 0
    resync_requests: int = 0
    resync_requested_at: float = float("-inf")
    #: Quorum-read eligibility: the primary's clock and log position as
    #: of the last heartbeat this backup *received* (vs last_heartbeat,
    #: which is the backup's own receive time).  A backup may serve a
    #: read under freshness bound F only if hb_sent_at is within F and
    #: it has contiguously folded everything the primary had resolved
    #: by then -- see :meth:`ReplicaSet.read_eligible`.
    hb_sent_at: float = float("-inf")
    hb_log_index: int = 0
    hb_resolve_count: int = 0
    #: Frames rejected because their HMAC stamp failed verification
    #: (tampered in flight, or forged without the pair key).
    sig_rejected: int = 0
    #: This replica's ordered view of the committed record stream --
    #: the chain digest its votes advertise.
    ledger: DigestLedger = field(default_factory=DigestLedger)
    #: Resolves whose locally computed leaf digest disagreed with the
    #: primary's advertised one (missing records, or a lying primary);
    #: the replica abstains from voting those until a resync heals them.
    leaf_mismatches: int = 0
    #: Partial record sets awaiting a resync heal: resolve_seq ->
    #: accumulated records (bounded).
    pending_leaves: Dict[int, List[RecordShip]] = field(default_factory=dict)
    #: Primary-side view: this backup's latest vote (ledger floor,
    #: chain digest) and the highest floor whose vote matched ours.
    vote_floor: int = 0
    vote_digest: int = 0
    vote_matched: int = 0
    vote_conflicts: int = 0
    #: Quarantined: votes conflicted with the majority.  Excluded from
    #: shipping, voting, quorum, and election until rehabilitated.
    quarantined: bool = False
    quarantined_at: float = float("-inf")
    #: Throttle for backup-side heartbeat-digest conflict reports.
    digest_conflict_floor: int = -1

    @property
    def is_live(self) -> bool:
        return self.role is not ReplicaRole.DEAD and not self.controller.crashed


@dataclass
class FailoverRecord:
    """One completed failover, for experiment reporting."""

    epoch: int
    #: Sim time the promotion completed.
    at: float
    #: Sim time the old primary was last known good (crash time when
    #: observed, else its last heartbeat heard by the new primary).
    down_at: float
    #: down_at -> promotion: the unavailability window E16 measures.
    duration: float
    from_replica: str
    to_replica: str
    orphan_txns: int
    orphan_inverses: int
    replayed_records: int
    #: BYZANTINE mode only: whether 2f+1 surviving replicas agreed on
    #: the promoted tail's chain digest (True trivially in CRASH_FAULT).
    tail_verified: bool = True


@dataclass
class QuorumReadResult:
    """One freshness-bounded read answered by the replica set.

    ``rules`` is the identity set of the flow rules the serving
    replica's shadow holds for ``dpid`` -- the same (match, priority,
    actions) triple the divergence metrics compare on.  ``staleness``
    is an upper bound on how old the answer can be: 0 for the primary,
    otherwise now minus the primary send-clock of the last heartbeat
    the serving backup folded up to.  ``resolve_floor`` is how many
    resolves the serving replica had contiguously folded -- provably >=
    everything the primary resolved before (now - freshness) whenever a
    backup serves (see :meth:`ReplicaSet.read_eligible`).
    """

    dpid: int
    rules: frozenset
    served_by: str
    staleness: float
    freshness: float
    #: True when enough replicas were reachable that the answer is
    #: backed by a majority-sized live cohort (primary included).
    quorum_met: bool
    from_backup: bool
    resolve_floor: int


class ReplicaSet:
    """Primary-backup controller HA over an existing deployment.

    Wraps a started (or about-to-start) :class:`~repro.network.net.
    Network` whose controller runs a :class:`~repro.core.runtime.
    LegoSDNRuntime`, adds ``backups`` warm standby controllers on the
    same simulated clock, and wires the shipping, lease, and fencing
    machinery.  ``lease_timeout`` bounds detection: failover time is
    roughly ``lease_timeout + check_interval`` plus channel delays,
    which E16 asserts.
    """

    def __init__(self, net, runtime: LegoSDNRuntime, backups: int = 1,
                 heartbeat_interval: float = 0.05,
                 lease_timeout: float = 0.2,
                 check_interval: float = 0.025,
                 repl_base_delay: float = 0.0002,
                 repl_per_byte_delay: float = 2e-8,
                 replay_window: float = 0.5,
                 stats_interval: float = 0.25,
                 repl_reliable: bool = True,
                 repl_retry_budget: int = 6,
                 chaos=None,
                 quorum: bool = False,
                 quorum_timeout: float = 0.25,
                 resync_cooldown: float = 0.1,
                 seed: int = 0,
                 controller=None,
                 dpids: Optional[List[int]] = None,
                 shard_id: Optional[int] = None,
                 repl_mode: str = "crash",
                 clean_window: float = 2.0,
                 byz_f: Optional[int] = None,
                 vote_timeout: float = 0.25,
                 quarantine_threshold: int = 2,
                 auth_fault_threshold: int = 3,
                 signed: bool = True,
                 byzantine=None,
                 secret=None):
        if backups < 1:
            raise ValueError("a replica set needs at least one backup")
        if lease_timeout <= heartbeat_interval:
            raise ValueError("lease_timeout must exceed heartbeat_interval")
        if repl_mode not in ("crash", "byzantine", "adaptive"):
            raise ValueError(
                "repl_mode must be 'crash', 'byzantine', or 'adaptive'")
        self.net = net
        self.sim = net.sim
        #: The switch subset this set serves.  Defaults to the whole
        #: network (the unsharded deployment); a ShardCoordinator
        #: passes each set its shard's dpids, scoping fencing, stats
        #: polling, failover reconnection, and divergence accounting to
        #: the owned switches only.
        self.dpids: List[int] = sorted(
            dpids if dpids is not None else net.switches)
        unknown = [d for d in self.dpids if d not in net.switches]
        if unknown:
            raise ValueError(f"unknown dpids {unknown}")
        self.shard_id = shard_id
        primary_controller = controller if controller is not None \
            else net.controller
        self.heartbeat_interval = heartbeat_interval
        self.lease_timeout = lease_timeout
        self.check_interval = check_interval
        self.repl_base_delay = repl_base_delay
        self.repl_per_byte_delay = repl_per_byte_delay
        self.replay_window = replay_window
        self.stats_interval = stats_interval
        #: Reliable shipping channels (seq/ack/retransmit) so transient
        #: loss never silently skips a log record; long partitions still
        #: exhaust the budget and create gaps -- which the ranged
        #: resync below repairs on heal.
        self.repl_reliable = repl_reliable
        self.repl_retry_budget = repl_retry_budget
        #: Optional chaos: a ChaosProfile for every backup channel, or
        #: a callable ``replica_id -> profile-or-None``.
        self.chaos = chaos
        #: Quorum (majority-ack) commit mode: a commit is *durable*
        #: only once a majority of live replicas (primary included)
        #: acked its resolve.  A quorum missing past
        #: ``quorum_timeout`` degrades that commit to async shipping
        #: (availability over durability), flagged in stats.
        self.quorum = quorum
        self.quorum_timeout = quorum_timeout
        #: Min gap between ResyncRequests from one backup, so a slow
        #: replay is not re-requested every heartbeat.
        self.resync_cooldown = resync_cooldown
        self.seed = seed
        #: Authenticated shipping: every replication frame carries a
        #: pair-keyed HMAC stamp, verified on receipt.  On by default;
        #: ``signed=False`` is the codec A/B knob for the E20 overhead
        #: measurement.
        self.signed = signed
        self.keyring = ReplicaKeyring(secret if secret is not None else seed)
        #: Byzantine *replica* fault injection: a
        #: :class:`~repro.faults.byzfaults.ByzantineProfile` per replica
        #: id (callable ``rid -> profile-or-None``, dict, or one
        #: profile), mirroring the ``chaos`` idiom.
        self.byzantine = byzantine
        self.repl_mode = repl_mode
        #: The CRASH_FAULT <-> BYZANTINE state machine; "crash" and
        #: "byzantine" pin the mode, "adaptive" lets anomalies escalate
        #: and a clean window de-escalate.  Epoch-fenced at failover.
        self.mode_policy = ReplicationModePolicy(
            mode=(ReplicationMode.BYZANTINE if repl_mode == "byzantine"
                  else ReplicationMode.CRASH_FAULT),
            clean_window=clean_window,
            pinned=repl_mode != "adaptive")
        self.mode_policy.on_switch.append(self._on_mode_switch)
        #: Tolerated Byzantine replicas; None derives floor((n-1)/3)
        #: from the live cohort at each vote count.
        self.byz_f = byz_f
        self.vote_timeout = vote_timeout
        #: Conflicting votes from one replica before it is quarantined.
        self.quarantine_threshold = quarantine_threshold
        #: Signature rejections from one peer per AuthFault raised.
        self.auth_fault_threshold = auth_fault_threshold
        #: Byzantine accounting (set level).
        self.sig_rejected = 0
        self.votes_cast = 0
        self.vote_conflicts = 0
        self.votes_confirmed = 0
        self.vote_stalls = 0
        self.quarantines = 0
        self.rejoins = 0
        self.tail_unverified = 0
        self.auth_faults: List[AuthFault] = []
        #: Called with each AuthFault (the replication-layer sibling of
        #: the channel's on_fault).
        self.on_auth_fault: List = []
        #: Commits awaiting 2f+1 matching digest votes (BYZANTINE mode):
        #: resolve_seq -> shipped_at.
        self._pending_votes: Dict[int, float] = {}
        #: Shipped-but-unresolved record frames per txn, for the
        #: primary's leaf digest at resolve time.
        self._txn_frames: Dict[int, List[RecordShip]] = {}
        #: Chain-digest rebase point: ledgers restart here after each
        #: failover (the view-change's agreed floor).
        self._digest_base = 0
        #: HealthWatchdog wired via guard_replication (None = standalone
        #: escalation through the mode policy only).
        self.watchdog = None
        self.epoch = 0
        self.ship_index = 0
        #: Total resolves shipped (the heartbeat's second lag axis).
        self.resolve_count = 0
        #: Everything shipped this epoch, in ship order, for ranged
        #: resync replay: ("record", RecordShip) | ("resolve", TxnResolve).
        self.ship_history: List[tuple] = []
        self.resyncs_served = 0
        self.resync_records_sent = 0
        self.quorum_commits = 0
        self.quorum_stalls = 0
        self.quorum_degraded = False
        #: Commits awaiting majority ack: txn_id -> (resolve seq,
        #: shipped_at).
        self._pending_quorum: Dict[int, tuple] = {}
        self.failovers: List[FailoverRecord] = []
        self.fence = EpochFence(epoch=0)
        for dpid in self.dpids:
            net.switches[dpid].fence = self.fence
        self._stop_heartbeat = None
        self._stop_stats = None
        self._primary_down_at: Optional[float] = None
        self._partitioned_replica: Optional[ControllerReplica] = None
        #: Called with the newly promoted replica after every failover
        #: (the coordinator re-attaches shard routing to the fresh
        #: controller here).
        self.on_promote: List = []
        #: Quorum reads served, and how many had to fall back to the
        #: primary because no backup met the freshness bound.
        self.quorum_reads = 0
        self.quorum_read_fallbacks = 0
        #: (sim time, resolve_count) at each shipped resolve, bounded:
        #: lets tests and operators ask "what had resolved by time T"
        #: -- the floor a freshness-bounded read must clear.
        self.resolve_times: List[tuple] = []
        self.resolve_times_max = 4096

        primary = ControllerReplica(
            replica_id="r0",
            controller=primary_controller,
            telemetry=primary_controller.telemetry,
            role=ReplicaRole.PRIMARY,
            runtime=runtime,
        )
        self.replicas: List[ControllerReplica] = [primary]
        enabled = primary.telemetry.enabled
        flight_capacity = getattr(primary.telemetry.recorder, "capacity", 128)
        metrics_max_samples = getattr(primary.telemetry.metrics,
                                      "max_samples", None)
        discovery_interval = getattr(
            primary_controller.discovery, "interval", 0.5)
        for i in range(1, backups + 1):
            replica_id = f"r{i}"
            telemetry = Telemetry(enabled=enabled,
                                  flight_capacity=flight_capacity,
                                  replica_id=replica_id,
                                  shard_id=shard_id,
                                  metrics_max_samples=metrics_max_samples)
            controller = Controller(
                self.sim,
                control_delay=primary_controller.control_delay,
                discovery_interval=discovery_interval,
                telemetry=telemetry,
                service_time=primary_controller.service_time,
            )
            controller.shard_id = shard_id
            self.replicas.append(ControllerReplica(
                replica_id=replica_id,
                controller=controller,
                telemetry=telemetry,
                role=ReplicaRole.BACKUP,
            ))
        for replica in self.replicas[1:]:
            self._wire_backup(replica)
        self._install_primary(primary)
        self._stop_monitor = self.sim.every(check_interval, self._monitor)

    # -- accessors ---------------------------------------------------------

    @property
    def primary(self) -> Optional[ControllerReplica]:
        for replica in self.replicas:
            if replica.role is ReplicaRole.PRIMARY:
                return replica
        return None

    @property
    def runtime(self) -> Optional[LegoSDNRuntime]:
        primary = self.primary
        return primary.runtime if primary else None

    def replica(self, replica_id: str) -> ControllerReplica:
        for replica in self.replicas:
            if replica.replica_id == replica_id:
                return replica
        raise KeyError(replica_id)

    def live_backups(self) -> List[ControllerReplica]:
        return [r for r in self.replicas
                if r.role is ReplicaRole.BACKUP and r.is_live
                and not r.quarantined]

    @property
    def mode(self) -> ReplicationMode:
        return self.mode_policy.mode

    @property
    def voting(self) -> bool:
        """True while resolves require 2f+1 matching digest votes."""
        return self.mode_policy.voting

    def backup_lag(self, replica: ControllerReplica) -> int:
        """Shipped records this backup has not yet received."""
        return self.ship_index - replica.last_ship_index

    # -- wiring ------------------------------------------------------------

    def _wire_backup(self, replica: ControllerReplica) -> None:
        """(Re)connect a backup to the current primary.

        Each backup gets its own UDP channel (primary holds the proxy
        end, the backup the stub end), so shipping a record costs real
        encoded bytes and channel latency just like delivering an event
        to an app.  Called again after every failover: the promoted
        primary opens fresh channels to the surviving backups.
        """
        chaos = (self.chaos(replica.replica_id) if callable(self.chaos)
                 else self.chaos)
        channel = UdpChannel(
            self.sim,
            base_delay=self.repl_base_delay,
            per_byte_delay=self.repl_per_byte_delay,
            seed=self.seed + int(replica.replica_id[1:]),
            # Batched shipping: all records/resolves committed in one
            # sim instant ride one datagram to each backup.
            batch=True,
            reliable=self.repl_reliable,
            retry_budget=self.repl_retry_budget,
            chaos=chaos,
            telemetry=self.primary.controller.telemetry,
            span_name="replication.ship",
        )
        channel.stub_end.on_frame(
            lambda frame, r=replica: self._on_backup_frame(r, frame))
        channel.proxy_end.on_frame(
            lambda frame, r=replica: self._on_primary_frame(r, frame))
        replica.channel = channel
        # A fresh lease: the backup has "heard from" this primary now.
        replica.last_heartbeat = self.sim.now

    def _install_primary(self, replica: ControllerReplica) -> None:
        """Hook shipping + heartbeats into ``replica``'s runtime.

        The shipping closures capture the replica so a superseded
        primary (demoted, or crashed-then-rebooted) can never ship
        records into the new epoch: the role check turns its callbacks
        into no-ops the moment it stops being primary.
        """
        replica.telemetry.set_replica(replica.replica_id)
        if self.shard_id is not None:
            replica.telemetry.set_shard(self.shard_id)
        replica.controller.epoch = self.epoch
        manager = replica.runtime.proxy.manager

        def ship(txn, record, replica=replica):
            if (replica.role is ReplicaRole.PRIMARY
                    and not replica.controller.crashed
                    and replica is not self._partitioned_replica):
                self._ship_record(txn, record)

        def resolve(txn, outcome, replica=replica):
            if (replica.role is ReplicaRole.PRIMARY
                    and not replica.controller.crashed
                    and replica is not self._partitioned_replica):
                self._ship_resolve(txn, outcome)

        manager.on_apply.append(ship)
        manager.on_resolve.append(resolve)

        def on_crash(exc, culprit, replica=replica):
            if replica.role is not ReplicaRole.PRIMARY:
                return
            # The primary holds the proxy end of every replication
            # channel: ships/resolves/heartbeats it enqueued this tick
            # but never flushed die with its process.
            self._drop_unflushed_replication()
            if self._primary_down_at is None:
                self._primary_down_at = self.sim.now

        replica.controller.crash_callbacks.append(on_crash)

        def heartbeat(replica=replica):
            if (replica.role is ReplicaRole.PRIMARY
                    and not replica.controller.crashed
                    and replica is not self._partitioned_replica):
                self._primary_heartbeat(replica)

        self._stop_heartbeat = self.sim.every(
            self.heartbeat_interval, heartbeat)

        # Stats polling keeps the NetLog shadow honest: the controller
        # cannot see data-plane hits, so without the switches' own
        # reports the shadow's idle clocks drift from reality -- and a
        # promoted backup would inherit (and compound) that drift.  The
        # replies reconcile through TransactionManager.note_flow_stats.
        def poll_stats(replica=replica):
            if (replica.role is ReplicaRole.PRIMARY
                    and not replica.controller.crashed
                    and replica is not self._partitioned_replica):
                for dpid in self.dpids:
                    if self.net.switches[dpid].up:
                        replica.controller.send_to_switch(
                            dpid, FlowStatsRequest())

        if self.stats_interval > 0:
            self._stop_stats = self.sim.every(
                self.stats_interval, poll_stats)

    # -- authenticated shipping ---------------------------------------------

    def _primary_id(self) -> str:
        primary = self.primary
        return primary.replica_id if primary is not None else "r?"

    def _byz_profile(self, replica_id: str):
        if self.byzantine is None:
            return None
        if callable(self.byzantine):
            return self.byzantine(replica_id)
        if isinstance(self.byzantine, dict):
            return self.byzantine.get(replica_id)
        return self.byzantine

    def _send_to_backup(self, frame, replica: ControllerReplica) -> None:
        """Stamp and transmit one primary->backup frame.

        Signing happens per peer (the MAC is pair-keyed), after which a
        compromised primary's ByzantineProfile gets its say -- it holds
        its own keys, so its equivocated variants are re-signed through
        ``signer`` and pass authentication; only voting can catch them.
        """
        sender = self._primary_id()
        receiver = replica.replica_id
        if self.signed:
            frame = self.keyring.stamp(frame, sender, receiver)
        profile = self._byz_profile(sender)
        if profile is not None:
            signer = ((lambda f: self.keyring.stamp(f, sender, receiver))
                      if self.signed else (lambda f: f))
            frames = profile.perturb_primary(self.sim.now, frame,
                                             receiver, signer)
        else:
            frames = (frame,)
        for out in frames:
            replica.channel.proxy_end.send(out)

    def _send_to_primary(self, replica: ControllerReplica, frame) -> None:
        """Stamp and transmit one backup->primary frame (acks, resyncs)."""
        sender = replica.replica_id
        receiver = self._primary_id()
        if self.signed:
            frame = self.keyring.stamp(frame, sender, receiver)
        profile = self._byz_profile(sender)
        if profile is not None:
            signer = ((lambda f: self.keyring.stamp(f, sender, receiver))
                      if self.signed else (lambda f: f))
            frames = profile.perturb_backup(self.sim.now, frame, signer)
        else:
            frames = (frame,)
        for out in frames:
            replica.channel.stub_end.send(out)

    def _note_sig_rejected(self, replica: ControllerReplica, frame) -> None:
        """One frame failed HMAC verification: count it, and raise an
        AuthFault once the run from this peer crosses the threshold --
        a tampering replica is *detected*, never obeyed."""
        replica.sig_rejected += 1
        self.sig_rejected += 1
        primary = self.primary
        telemetry = primary.telemetry if primary is not None \
            else replica.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("replication.sig_rejected")
            telemetry.tracer.event(
                "replication.sig_rejected", replica=replica.replica_id,
                frame=type(frame).__name__)
        if replica.sig_rejected % self.auth_fault_threshold == 0:
            fault = AuthFault(replica_id=replica.replica_id,
                              rejections=replica.sig_rejected,
                              at=self.sim.now)
            self.auth_faults.append(fault)
            for callback in list(self.on_auth_fault):
                callback(fault)
            self._note_byzantine(
                "auth-fault",
                f"{replica.replica_id}: {replica.sig_rejected} "
                f"signature rejections",
                replica=replica.replica_id)

    def _note_byzantine(self, kind: str, detail: str, **tags) -> None:
        """Central suspicion sink: escalate the mode policy and feed the
        watchdog's byzantine-divergence anomaly kind (scored on
        /healthz) when one is wired."""
        self.mode_policy.note_anomaly(self.sim.now, self.epoch, kind, detail)
        if self.watchdog is not None:
            self.watchdog.note_byzantine(detail, suspicion=kind, **tags)
        else:
            primary = self.primary
            if primary is not None and primary.telemetry.enabled:
                primary.telemetry.tracer.event(
                    f"replication.{kind}", detail=detail, **tags)

    def _on_mode_switch(self, record) -> None:
        if record.mode is ReplicationMode.CRASH_FAULT:
            # De-escalation releases in-flight voting windows: their
            # deadline callbacks find nothing pending and no-op.
            self._pending_votes.clear()
        primary = self.primary
        if primary is not None and primary.telemetry.enabled:
            primary.telemetry.metrics.inc("replication.mode_switches")
            primary.telemetry.tracer.event(
                "replication.mode_switch", mode=record.mode.value,
                reason=record.reason, epoch=record.epoch)

    # -- primary side: shipping --------------------------------------------

    def _ship_record(self, txn, record) -> None:
        self.ship_index += 1
        frame = RecordShip(
            epoch=self.epoch,
            index=self.ship_index,
            txn_id=txn.txn_id,
            app_name=txn.app_name,
            dpid=record.dpid,
            message=record.message,
            inverses=tuple(record.inverse_messages),
            applied_at=record.applied_at,
            trace_id=getattr(txn, "trace_id", None) or 0,
        )
        self.ship_history.append(("record", frame))
        self._txn_frames.setdefault(frame.txn_id, []).append(frame)
        for replica in self.live_backups():
            self._send_to_backup(frame, replica)
        primary = self.primary
        if primary is not None and primary.telemetry.enabled:
            primary.telemetry.metrics.inc("replication.ships")

    def _ship_resolve(self, txn, outcome: str) -> None:
        self.resolve_count += 1
        records = self._txn_frames.pop(txn.txn_id, [])
        leaf = resolve_leaf(self.resolve_count, outcome, records)
        frame = TxnResolve(
            epoch=self.epoch,
            txn_id=txn.txn_id,
            outcome=outcome,
            log_index=self.ship_index,
            resolve_seq=self.resolve_count,
            trace_id=getattr(txn, "trace_id", None) or 0,
            leaf=leaf,
        )
        primary = self.primary
        if primary is not None:
            primary.ledger.add(self.resolve_count, leaf)
        self.ship_history.append(("resolve", frame))
        self.resolve_times.append((self.sim.now, self.resolve_count))
        if len(self.resolve_times) > self.resolve_times_max:
            del self.resolve_times[:len(self.resolve_times)
                                   - self.resolve_times_max]
        for replica in self.live_backups():
            self._send_to_backup(frame, replica)
        if self.quorum and outcome == "commit":
            self._pending_quorum[frame.resolve_seq] = self.sim.now
            self.sim.schedule(self.quorum_timeout,
                              self._quorum_deadline, frame.resolve_seq,
                              self.epoch)
        if self.voting and outcome == "commit":
            self._pending_votes[frame.resolve_seq] = self.sim.now
            self.sim.schedule(self.vote_timeout,
                              self._vote_deadline, frame.resolve_seq,
                              self.epoch)

    def _primary_heartbeat(self, replica: ControllerReplica) -> None:
        deltas = tuple(
            AppDelta(app_name=record.name, last_seq=record.last_seq,
                     events_completed=record.events_completed)
            for record in replica.runtime.proxy.apps.values()
        )
        frame = ReplHeartbeat(
            epoch=self.epoch,
            log_index=self.ship_index,
            sent_at=self.sim.now,
            app_deltas=deltas,
            resolve_count=self.resolve_count,
            # The primary's own vote: its chain digest at its ledger
            # floor (== resolve_count in steady state).
            digest=replica.ledger.digest,
        )
        for backup in self.live_backups():
            self._send_to_backup(frame, backup)
        if replica.telemetry.enabled:
            replica.telemetry.metrics.inc("replication.heartbeats")

    def _on_primary_frame(self, replica: ControllerReplica, frame) -> None:
        """Primary-side receive: acks and resync requests from backups.

        Epoch fencing first (stale traffic is stale, not hostile), then
        HMAC verification -- a frame that fails the pair MAC was
        tampered in flight or forged, and is counted and dropped, never
        processed.
        """
        if getattr(frame, "epoch", self.epoch) != self.epoch:
            replica.stale_frames += 1
            return
        if replica.quarantined:
            replica.stale_frames += 1
            return
        if self.signed and not self.keyring.verify(
                frame, replica.replica_id, self._primary_id()):
            self._note_sig_rejected(replica, frame)
            return
        if isinstance(frame, ReplAck):
            replica.acked_index = max(replica.acked_index, frame.log_index)
            replica.acked_resolves = max(replica.acked_resolves,
                                         frame.resolve_count)
            if frame.digest_floor > 0:
                self._note_vote(replica, frame.digest_floor, frame.digest)
            if self.quorum and self._pending_quorum:
                self._check_quorum()
        elif isinstance(frame, ResyncRequest):
            self._serve_resync(replica, frame)

    # -- partition-heal resync (primary side) -------------------------------

    def _serve_resync(self, replica: ControllerReplica,
                      request: ResyncRequest) -> None:
        """Replay the requested range to one lagging backup.

        Ranged, not full-log: only records with index > ``from_index``
        (plus the resolves at or past it, which fold them) are
        re-shipped.  The backup's seen/resolved sets make redelivery
        idempotent, so overlap at the range edge is harmless.
        """
        started = self.sim.now
        sent = 0
        for kind, frame in self.ship_history:
            if kind == "record" and frame.index > request.from_index:
                pass
            elif (kind == "resolve"
                    and frame.resolve_seq > request.from_resolve):
                pass
            else:
                continue
            if frame.epoch != self.epoch:
                # Re-ship as the current primary's own: the record
                # content is epoch-independent, only the fencing tag
                # must be fresh or the backup drops it as stale.  (The
                # history holds unsigned frames; _send_to_backup stamps
                # the fresh epoch, so re-shipped frames authenticate.)
                frame = replace(frame, epoch=self.epoch)
            self._send_to_backup(frame, replica)
            sent += 1
        self.resyncs_served += 1
        self.resync_records_sent += sent
        primary = self.primary
        if primary is not None and primary.telemetry.enabled:
            primary.telemetry.metrics.inc("replication.resyncs")
            primary.telemetry.tracer.record_span(
                "replication.resync", start=started,
                replica=replica.replica_id,
                from_index=request.from_index,
                to_index=request.to_index, frames=sent)

    # -- quorum commit (primary side) ---------------------------------------

    def _majority(self) -> int:
        live = 1 + len(self.live_backups())  # primary counts itself
        return live // 2 + 1

    def _check_quorum(self) -> None:
        """Retire pending commits whose resolve a majority has acked."""
        needed = self._majority()
        for resolve_seq in sorted(self._pending_quorum):
            shipped_at = self._pending_quorum[resolve_seq]
            acks = 1 + sum(
                1 for backup in self.live_backups()
                if backup.acked_resolves >= resolve_seq)
            if acks >= needed:
                del self._pending_quorum[resolve_seq]
                self.quorum_commits += 1
                self.quorum_degraded = False
                primary = self.primary
                if primary is not None and primary.telemetry.enabled:
                    primary.telemetry.metrics.inc(
                        "replication.quorum_commits")
                    primary.telemetry.metrics.observe(
                        "replication.quorum_latency",
                        self.sim.now - shipped_at)

    def _quorum_deadline(self, resolve_seq: int, epoch: int) -> None:
        """A commit's quorum window closed: degrade it to async.

        Graceful degradation, not blocking: the primary already applied
        the transaction (NetLog committed it); what is lost is only the
        durability guarantee, so the commit is released as async and
        the set flagged degraded until a later commit reaches quorum.
        """
        if epoch != self.epoch:
            return
        entry = self._pending_quorum.pop(resolve_seq, None)
        if entry is None:
            return  # quorum arrived in time
        self.quorum_stalls += 1
        self.quorum_degraded = True
        primary = self.primary
        if primary is not None and primary.telemetry.enabled:
            primary.telemetry.metrics.inc("replication.quorum_stalls")
            primary.telemetry.tracer.event(
                "replication.quorum_stall", resolve_seq=resolve_seq,
                majority=self._majority())

    # -- output voting (primary side, BYZANTINE mode) -------------------------

    def _vote_threshold(self) -> int:
        """Matching digest votes needed to confirm a resolve: 2f+1,
        clamped to the live cohort (sets smaller than 3f+1 cannot
        actually mask f liars -- the clamp keeps them live rather than
        wedged, and ``tail_unverified``/``vote_stalls`` record the
        shortfall)."""
        n = 1 + len(self.live_backups())  # primary votes its own ledger
        f = self.byz_f if self.byz_f is not None else tolerable_f(n)
        return min(vote_threshold(f), n)

    def _note_vote(self, replica: ControllerReplica, floor: int,
                   digest: int) -> None:
        """One backup's digest vote arrived (piggybacked on its ack).

        A matching vote advances the replica's verified floor and may
        confirm pending resolves; a conflicting one is Byzantine
        evidence -- counted, escalated, and (in voting mode, past the
        threshold, when the rest of the cohort stands behind the
        primary's digest) quarantining.
        """
        if floor < replica.vote_floor:
            return  # reordered ack: an older vote, already superseded
        replica.vote_floor = floor
        replica.vote_digest = digest
        self.votes_cast += 1
        primary = self.primary
        if primary is None:
            return
        if primary.telemetry.enabled:
            primary.telemetry.metrics.inc("replication.votes_cast")
        expected = primary.ledger.at(floor)
        if expected is None:
            return  # outside our history window: no verdict either way
        if digest == expected:
            replica.vote_matched = max(replica.vote_matched, floor)
            if self.voting and self._pending_votes:
                self._check_votes()
            return
        replica.vote_conflicts += 1
        self.vote_conflicts += 1
        if primary.telemetry.enabled:
            primary.telemetry.metrics.inc("replication.vote_conflicts")
        self._note_byzantine(
            "byzantine-divergence",
            f"{replica.replica_id} voted {digest:#018x} at resolve "
            f"{floor}, cohort digest {expected:#018x}",
            replica=replica.replica_id, floor=floor)
        if (self.voting and not replica.quarantined
                and replica.vote_conflicts >= self.quarantine_threshold
                and self._quarantine_justified(floor)):
            self._quarantine(replica, floor, expected, digest)

    def _quarantine_justified(self, floor: int) -> bool:
        """Quarantine only a genuine *minority*: 2f+1 of the cohort
        (primary included) must stand behind the primary's digest at or
        past the floor.  An equivocating primary cannot muster that
        majority, so its victims are never quarantined for honestly
        reporting what they saw."""
        matching = 1 + sum(1 for backup in self.live_backups()
                           if backup.vote_matched >= floor)
        return matching >= self._vote_threshold()

    def _check_votes(self) -> None:
        """Retire pending resolves that have 2f+1 matching votes."""
        needed = self._vote_threshold()
        for resolve_seq in sorted(self._pending_votes):
            votes = 1 + sum(1 for backup in self.live_backups()
                            if backup.vote_matched >= resolve_seq)
            if votes < needed:
                continue
            shipped_at = self._pending_votes.pop(resolve_seq)
            self.votes_confirmed += 1
            primary = self.primary
            if primary is not None and primary.telemetry.enabled:
                primary.telemetry.metrics.inc("replication.votes_confirmed")
                primary.telemetry.metrics.observe(
                    "replication.vote_latency", self.sim.now - shipped_at)

    def _vote_deadline(self, resolve_seq: int, epoch: int) -> None:
        """A resolve's voting window closed without 2f+1 agreement.

        Mirrors the quorum stall: graceful degradation, not blocking --
        the transaction is already applied; what is lost is only the
        Byzantine confirmation, which stays visible in the counters.
        """
        if epoch != self.epoch:
            return
        if self._pending_votes.pop(resolve_seq, None) is None:
            return  # confirmed in time
        self.vote_stalls += 1
        primary = self.primary
        if primary is not None and primary.telemetry.enabled:
            primary.telemetry.metrics.inc("replication.vote_stalls")
            primary.telemetry.tracer.event(
                "replication.vote_stall", resolve_seq=resolve_seq,
                needed=self._vote_threshold())

    def _quarantine(self, replica: ControllerReplica, floor: int,
                    expected: int, got: int) -> None:
        """Expel a replica whose votes conflict with the cohort.

        Quarantine removes it from shipping, voting, quorum, and
        election (live_backups excludes it) and files a problem ticket
        carrying both digests -- the operator-facing evidence trail.
        :meth:`rehabilitate` re-admits it through a full resync.
        """
        replica.quarantined = True
        replica.quarantined_at = self.sim.now
        self.quarantines += 1
        primary = self.primary
        if primary is not None and primary.telemetry.enabled:
            primary.telemetry.metrics.inc("replication.replicas_quarantined")
            primary.telemetry.tracer.event(
                "replication.quarantine", replica=replica.replica_id,
                floor=floor)
        runtime = self.runtime
        if runtime is not None:
            runtime.tickets.create(
                app_name=f"replica:{replica.replica_id}",
                time=self.sim.now,
                failure_kind="byzantine",
                offending_event=f"digest vote conflict at resolve {floor}",
                recovery_policy="quarantine",
                recovery_note=(f"voted {got:#018x}, cohort agreed on "
                               f"{expected:#018x}; rejoin requires "
                               f"rehabilitate() + full resync"),
            )

    def rehabilitate(self, replica_id: str) -> None:
        """Re-admit a quarantined replica (the operator's rejoin path).

        Nothing the replica holds can be trusted -- its log, shadow,
        and ledger are wiped and a *full* resync rebuilds them from the
        primary's history.  Until the replay lands it is an ordinary
        lagging backup; its votes resume from the rebased chain.
        """
        replica = self.replica(replica_id)
        if not replica.quarantined:
            return
        replica.quarantined = False
        replica.vote_conflicts = 0
        replica.vote_floor = 0
        replica.vote_digest = 0
        replica.vote_matched = 0
        replica.digest_conflict_floor = -1
        replica.leaf_mismatches = 0
        replica.pending_leaves.clear()
        replica.log.clear()
        replica.open_txns.clear()
        replica.shadow.clear()
        replica.seen_indices.clear()
        replica.contig_index = 0
        replica.seen_resolve_seqs.clear()
        replica.contig_resolves = 0
        replica.last_ship_index = 0
        replica.acked_index = 0
        replica.acked_resolves = 0
        replica.ledger.rebase(self._digest_base)
        # A fresh lease: nothing was heartbeated at it while in
        # quarantine, and a stale lease clock would make the rejoiner
        # (again the lowest-id candidate) instantly "detect" a primary
        # failure that never happened.
        replica.last_heartbeat = self.sim.now
        self.rejoins += 1
        primary = self.primary
        if primary is not None and primary.telemetry.enabled:
            primary.telemetry.metrics.inc("replication.rejoins")
            primary.telemetry.tracer.event(
                "replication.rejoin", replica=replica.replica_id)
        replica.resync_requested_at = self.sim.now
        replica.resync_requests += 1
        self._send_to_primary(replica, ResyncRequest(
            replica_id=replica.replica_id,
            epoch=self.epoch,
            from_index=0,
            to_index=self.ship_index,
            from_resolve=0,
        ))

    # -- backup side: the replicated log ------------------------------------

    def _on_backup_frame(self, replica: ControllerReplica, frame) -> None:
        if (replica.role is not ReplicaRole.BACKUP
                or getattr(frame, "epoch", self.epoch) < self.epoch):
            # Late traffic from a superseded epoch, or frames landing on
            # a replica that has since been promoted (or died).
            replica.stale_frames += 1
            return
        if replica.quarantined:
            replica.stale_frames += 1
            return
        if self.signed and not self.keyring.verify(
                frame, self._primary_id(), replica.replica_id):
            # Suspicion falls on the *sender*: a primary->backup frame
            # that fails the pair MAC was tampered by (or en route from)
            # the primary side.
            suspect = self.primary
            self._note_sig_rejected(
                suspect if suspect is not None else replica, frame)
            return
        if isinstance(frame, RecordShip):
            if frame.index in replica.seen_indices:
                # Resync overlap (or a network dup the channel let by):
                # already held, never double-counted or double-folded.
                replica.resync_dups += 1
                return
            replica.seen_indices.add(frame.index)
            while replica.contig_index + 1 in replica.seen_indices:
                replica.contig_index += 1
            replica.ships_received += 1
            replica.last_ship_index = max(replica.last_ship_index, frame.index)
            replica.open_txns.setdefault(frame.txn_id, []).append(frame)
            if replica.telemetry.enabled:
                replica.telemetry.metrics.inc("replication.ships_received")
            if self.quorum or self.voting:
                self._send_ack(replica)
        elif isinstance(frame, TxnResolve):
            # Idempotent by construction: a record enters open_txns at
            # most once (seen_indices), so re-processing a resolve after
            # a resync folds only records the first pass never had.
            records = replica.open_txns.pop(frame.txn_id, [])
            if frame.outcome == "commit":
                # Fold at commit-resolve, stamping each entry with the
                # primary's original apply time, so the backup's shadow
                # is exactly the state the primary's NetLog committed --
                # never a half-applied transaction.
                for rec in records:
                    table = replica.shadow.get(rec.dpid)
                    if table is None:
                        table = replica.shadow[rec.dpid] = FlowTable()
                    table.apply_flow_mod(rec.message, rec.applied_at)
                replica.log.extend(records)
            # On abort: discard.  The primary already sent the inverses
            # to the switches itself, and its own shadow never kept the
            # aborted writes either.
            self._fold_leaf(replica, frame, records)
            if frame.resolve_seq in replica.seen_resolve_seqs:
                replica.resync_dups += 1
            else:
                replica.seen_resolve_seqs.add(frame.resolve_seq)
                while (replica.contig_resolves + 1
                       in replica.seen_resolve_seqs):
                    replica.contig_resolves += 1
            if self.quorum or self.voting:
                self._send_ack(replica)
        elif isinstance(frame, ReplHeartbeat):
            replica.last_heartbeat = self.sim.now
            # Quorum-read high-water marks: the primary's position *as
            # of its send clock*.  Everything the primary resolved
            # before ``sent_at`` is <= hb_resolve_count, which is the
            # inequality read_eligible() leans on.
            replica.hb_sent_at = max(replica.hb_sent_at, frame.sent_at)
            replica.hb_log_index = max(replica.hb_log_index,
                                       frame.log_index)
            replica.hb_resolve_count = max(replica.hb_resolve_count,
                                           frame.resolve_count)
            replica.app_progress = {
                delta.app_name: delta for delta in frame.app_deltas
            }
            # Cross-check the primary's advertised chain digest against
            # this backup's own ledger at the same floor.  A mismatch at
            # a floor both sides have folded means the committed
            # histories already diverged -- report once per floor (the
            # throttle), escalate, and let voting arbitrate.
            if frame.resolve_count > 0:
                mine = replica.ledger.at(frame.resolve_count)
                if (mine is not None and mine != frame.digest
                        and frame.resolve_count
                        > replica.digest_conflict_floor):
                    replica.digest_conflict_floor = frame.resolve_count
                    self._note_byzantine(
                        "byzantine-divergence",
                        f"heartbeat digest {frame.digest:#018x} at resolve "
                        f"{frame.resolve_count} != {replica.replica_id}'s "
                        f"{mine:#018x}",
                        replica=replica.replica_id,
                        floor=frame.resolve_count)
            self._maybe_request_resync(replica, frame)
            self._send_ack(replica)

    def _fold_leaf(self, replica: ControllerReplica, frame: TxnResolve,
                   records: List[RecordShip]) -> None:
        """Fold one resolve into the backup's chain digest -- or abstain.

        The ledger only ever folds a leaf the primary's advertisement
        agrees with, so a resolve whose records were lost in flight can
        stall this backup's *vote* but never poison its chain.  Partial
        record sets park in ``pending_leaves``; a later resync replay
        re-delivers the gap and the merged set heals the leaf.  A
        mismatch with a provably *complete* record set is the
        equivocation signature: the advertised leaf does not hash from
        what was actually shipped here.
        """
        if frame.resolve_seq <= replica.ledger.floor:
            return  # pre-rebase (or already folded): no vote owed
        pending = replica.pending_leaves.pop(frame.resolve_seq, None)
        if pending:
            have = {r.index for r in records}
            records = list(records) + [r for r in pending
                                       if r.index not in have]
        local_leaf = resolve_leaf(frame.resolve_seq, frame.outcome, records)
        if local_leaf == frame.leaf:
            replica.ledger.add(frame.resolve_seq, local_leaf)
            return
        replica.leaf_mismatches += 1
        if len(replica.pending_leaves) < 256:
            replica.pending_leaves[frame.resolve_seq] = list(records)
        if records and replica.contig_index >= frame.log_index:
            self._note_byzantine(
                "equivocation",
                f"{replica.replica_id} computed leaf {local_leaf:#018x} "
                f"for resolve {frame.resolve_seq} from a complete record "
                f"set; primary advertised {frame.leaf:#018x}",
                replica=replica.replica_id, resolve_seq=frame.resolve_seq)

    def _send_ack(self, replica: ControllerReplica) -> None:
        self._send_to_primary(replica, ReplAck(
            replica_id=replica.replica_id,
            epoch=self.epoch,
            log_index=replica.last_ship_index,
            resolve_count=replica.contig_resolves,
            # The vote: this backup's chain digest at its verified
            # floor (which lags contig_resolves while abstaining).
            digest=replica.ledger.digest,
            digest_floor=replica.ledger.floor,
        ))

    def _maybe_request_resync(self, replica: ControllerReplica,
                              heartbeat: ReplHeartbeat) -> None:
        """Backup-side lag detection on heartbeat (the heal signal).

        During a partition nothing arrives, so the *first heartbeat
        through* is also the first moment the backup can compare the
        primary's advertised position against what it contiguously
        holds.  A gap in either axis -- records or resolves -- asks for
        a ranged replay instead of waiting for full-log heartbeat
        repair that never comes.
        """
        behind = (heartbeat.log_index > replica.contig_index
                  or heartbeat.resolve_count > replica.contig_resolves
                  # Abstaining from a leaf (partial record set) also
                  # counts as lag: the replay re-delivers the gap so
                  # the merged set can heal the vote.
                  or (bool(replica.pending_leaves)
                      and heartbeat.resolve_count > replica.ledger.floor))
        if not behind:
            return
        if self.sim.now - replica.resync_requested_at < self.resync_cooldown:
            return  # one outstanding request at a time
        replica.resync_requested_at = self.sim.now
        replica.resync_requests += 1
        if replica.telemetry.enabled:
            replica.telemetry.tracer.event(
                "replication.resync_request",
                from_index=replica.contig_index,
                to_index=heartbeat.log_index)
        self._send_to_primary(replica, ResyncRequest(
            replica_id=replica.replica_id,
            epoch=self.epoch,
            from_index=replica.contig_index,
            to_index=heartbeat.log_index,
            from_resolve=min(replica.contig_resolves, replica.ledger.floor),
        ))

    def _drop_unflushed_replication(self) -> int:
        """Discard frames the primary batched but never flushed.

        Called when the primary dies (crash callback) and again at
        failover (covers the partition path, where the old primary's
        process never crashed but its link to the backups is gone).
        """
        dropped = 0
        for replica in self.replicas:
            if (replica.role is ReplicaRole.BACKUP
                    and replica.channel is not None):
                dropped += replica.channel.drop_pending("proxy")
        return dropped

    # -- failure detection ----------------------------------------------------

    def _candidate(self) -> Optional[ControllerReplica]:
        """Deterministic election: the lowest-id live backup."""
        backups = self.live_backups()
        return backups[0] if backups else None

    def _monitor(self) -> None:
        """The lease check, run on the simulated clock.

        The candidate backup watches its own heartbeat stream: once the
        primary has been silent past the lease, the candidate promotes
        itself.  Election is deterministic (lowest live id), so no
        coordination round is needed -- SMaRtLight similarly relies on
        its coordination service to serialise who may be active.
        """
        self.mode_policy.maybe_deescalate(self.sim.now, self.epoch)
        candidate = self._candidate()
        if candidate is None or self.primary is None:
            return
        silent_for = self.sim.now - candidate.last_heartbeat
        if silent_for > self.lease_timeout:
            self._failover(candidate)

    # -- fault injection (experiments) ----------------------------------------

    def crash_primary(self, reason: str = "injected controller fault") -> None:
        """Kill the primary's controller process (E16's fault)."""
        self.primary.controller.crash(RuntimeError(reason),
                                      culprit="fault-injection")

    def partition_primary(self) -> None:
        """Cut the primary off from the backups without killing it.

        The primary keeps running -- and keeps believing it is primary
        -- but its heartbeats and ships no longer reach anyone, so the
        lease expires and a backup takes over.  This is the split-brain
        scenario the epoch fence exists for: the partitioned ex-primary
        can still *send* to switches, but its writes carry a superseded
        epoch and are rejected.
        """
        self._partitioned_replica = self.primary

    # -- failover ----------------------------------------------------------------

    def _failover(self, candidate: ControllerReplica) -> None:
        old = self.primary
        now = self.sim.now
        down_at = (self._primary_down_at
                   if self._primary_down_at is not None
                   else candidate.last_heartbeat)
        # The demoted primary's unflushed replication batches never
        # reach the wire -- its process is dead, or (partition) its
        # link to the backups is cut.  Must run while the backups'
        # channels still point at the old primary.
        self._drop_unflushed_replication()
        old.role = ReplicaRole.DEAD
        old_runtime = old.runtime
        # The dead deployment must never again talk to the stubs (a
        # late detector tick sending RestoreCommands would corrupt apps
        # that have re-attached elsewhere).
        old_runtime.proxy.shutdown()
        if self._stop_heartbeat is not None:
            self._stop_heartbeat()
            self._stop_heartbeat = None
        if self._stop_stats is not None:
            self._stop_stats()
            self._stop_stats = None

        # 1. Advance the epoch and fence the old one out of every
        # switch BEFORE the new primary exists: from this instant the
        # old primary's writes -- even ones already in flight -- are
        # rejected at delivery.  Commits the old primary was holding
        # for quorum die with its epoch (their deadline callbacks
        # no-op on the epoch guard).
        self._pending_quorum.clear()
        self._pending_votes.clear()
        self._txn_frames.clear()
        self.epoch += 1
        self.fence.advance(self.epoch)
        # The mode policy is fenced on the same epoch: an escalation or
        # de-escalation computed against the dead epoch (and delivered
        # late) is rejected, so the two sides of this failover can
        # never disagree about the mode.  The mode itself carries over.
        self.mode_policy.advance_epoch(self.epoch)
        candidate.role = ReplicaRole.PRIMARY
        candidate.controller.epoch = self.epoch

        # BYZANTINE mode: promotion-time tail verification.  Before the
        # ledgers rebase, 2f+1 of the surviving cohort (the candidate
        # included) must agree on the candidate's chain digest at its
        # verified floor -- a replica promoting a fabricated tail fails
        # this loudly instead of silently becoming the source of truth.
        tail_verified = True
        if self.voting:
            tail_floor = candidate.ledger.floor
            agree = 1  # the candidate stands behind its own tail
            for survivor in self.replicas:
                if (survivor is not candidate
                        and survivor.role is ReplicaRole.BACKUP
                        and survivor.is_live and not survivor.quarantined
                        and survivor.ledger.at(tail_floor)
                        == candidate.ledger.digest):
                    agree += 1
            needed = self._vote_threshold()
            tail_verified = agree >= needed
            if not tail_verified:
                self.tail_unverified += 1
                self._note_byzantine(
                    "tail-unverified",
                    f"promotion of {candidate.replica_id} at resolve "
                    f"floor {tail_floor}: {agree}/{needed} matching "
                    f"digests",
                    replica=candidate.replica_id)

        # Epoch-scoped digest chains: replicas may have missed
        # *different* tails of the dead primary's stream, so cross-epoch
        # chain continuity is unprovable.  Every ledger rebases at the
        # set's resolve count (the view-change's agreed floor); votes
        # and conflict throttles restart from the fresh chain.
        self._digest_base = self.resolve_count
        for replica in self.replicas:
            replica.ledger.rebase(self._digest_base)
            replica.vote_floor = 0
            replica.vote_digest = 0
            replica.vote_matched = 0
            replica.digest_conflict_floor = -1
            replica.pending_leaves.clear()

        # 2. Take over the switch sessions (owned dpids only -- other
        # shards' switches belong to their own sets).  connect_switch
        # repoints each switch's control channel, so switch->controller
        # traffic flows to the new primary from here on.
        for dpid in self.dpids:
            switch = self.net.switches[dpid]
            if switch.up:
                candidate.controller.connect_switch(switch)

        # 3. A fresh runtime with the old deployment's configuration,
        # seeded with the replicated shadow so post-failover inversions
        # see the same pre-state the old primary saw.
        runtime = LegoSDNRuntime(
            candidate.controller,
            mode=old_runtime.mode,
            policy_table=old_runtime.crashpad.policy_table,
            byzantine_check=old_runtime.proxy.byzantine_check,
            shutdown_on_critical=old_runtime.proxy.shutdown_on_critical,
            checkpoint_interval=old_runtime.checkpoint_interval,
            heartbeat_interval=old_runtime.heartbeat_interval,
            channel_base_delay=old_runtime.channel_base_delay,
            channel_per_byte_delay=old_runtime.channel_per_byte_delay,
            channel_loss=old_runtime.channel_loss,
            channel_batch=old_runtime.channel_batch,
            checkpoint_base_cost=old_runtime.checkpoint_base_cost,
            checkpoint_per_byte_cost=old_runtime.checkpoint_per_byte_cost,
            checkpoint_full_every=old_runtime.checkpoint_full_every,
            checkpoint_delta_cost=old_runtime.checkpoint_delta_cost,
            checkpoint_dedup=old_runtime.checkpoint_dedup,
            checkpoint_codec=old_runtime.checkpoint_codec,
            checkpoint_encode_per_byte_cost=(
                old_runtime.checkpoint_encode_per_byte_cost),
            checkpoint_dirty_tracking=old_runtime.checkpoint_dirty_tracking,
            checkpoint_deferred=old_runtime.checkpoint_deferred,
            checkpoint_adaptive=old_runtime.checkpoint_adaptive,
            checkpoint_max_tail=old_runtime.checkpoint_max_tail,
            parallel_lanes=old_runtime.proxy.parallel_lanes,
            seed=old_runtime.seed,
        )
        candidate.runtime = runtime
        manager = runtime.proxy.manager
        manager.adopt_shadow(candidate.shadow)

        # 4. Converge: replay the committed tail (idempotent FlowMods
        # re-assert recent state on the switches), then roll back the
        # orphans -- transactions the old primary opened but never
        # resolved -- from their shipped inverses, newest first.
        replayed = 0
        if self.replay_window > 0:
            cutoff = now - self.replay_window
            for ship in candidate.log:
                if ship.applied_at >= cutoff:
                    candidate.controller.send_to_switch(
                        ship.dpid, ship.message)
                    replayed += 1
        orphan_txns = len(candidate.open_txns)
        orphan_inverses = 0
        for txn_id in sorted(candidate.open_txns, reverse=True):
            for ship in reversed(candidate.open_txns[txn_id]):
                for inverse in ship.inverses:
                    manager.shadow_table(ship.dpid).apply_flow_mod(
                        inverse, now)
                    candidate.controller.send_to_switch(ship.dpid, inverse)
                    orphan_inverses += 1
        candidate.open_txns.clear()

        # 5. The stubs survived; adopt them.  Each re-registers with
        # the new proxy over its existing channel, resuming its seq
        # numbering so checkpoints and journals stay coherent.
        for name, stub in old_runtime.stubs.items():
            runtime.adopt_app(stub, old_runtime.channels[name])

        # 6. Resume dispatch (discovery + SwitchJoin announcements) and
        # become the shipping source for the surviving backups.
        candidate.controller.start()
        for replica in self.replicas:
            if replica.role is ReplicaRole.BACKUP:
                self._wire_backup(replica)
        self._install_primary(candidate)

        duration = now - down_at
        record = FailoverRecord(
            epoch=self.epoch,
            at=now,
            down_at=down_at,
            duration=duration,
            from_replica=old.replica_id,
            to_replica=candidate.replica_id,
            orphan_txns=orphan_txns,
            orphan_inverses=orphan_inverses,
            replayed_records=replayed,
            tail_verified=tail_verified,
        )
        self.failovers.append(record)
        self._primary_down_at = None
        if self._partitioned_replica is old:
            self._partitioned_replica = None
        for callback in list(self.on_promote):
            callback(candidate)
        if candidate.telemetry.enabled:
            candidate.telemetry.tracer.record_span(
                "replication.failover", start=down_at,
                epoch=self.epoch,
                from_replica=old.replica_id,
                to_replica=candidate.replica_id,
                orphan_txns=orphan_txns,
                replayed=replayed,
            )
            candidate.telemetry.metrics.inc("replication.failovers")
            candidate.telemetry.metrics.observe(
                "replication.failover_time", duration)

    # -- quorum reads --------------------------------------------------------

    def resolve_floor(self, before: float) -> int:
        """How many resolves the primary had shipped by sim time
        ``before`` -- the count a freshness-bounded read must cover."""
        floor = 0
        for at, count in self.resolve_times:
            if at <= before:
                floor = count
            else:
                break
        return floor

    def read_eligible(self, replica: ControllerReplica,
                      freshness: float) -> bool:
        """May this backup serve a read under ``freshness``?

        Eligibility is provable staleness, not hope: the backup must
        have heard a heartbeat the primary *sent* within the bound, and
        have contiguously folded every record and resolve that
        heartbeat advertised.  Then anything the primary resolved
        before ``now - freshness`` was resolved before that heartbeat's
        send clock, is counted in its high-water marks, and is already
        folded here -- the read can be at most ``freshness`` old no
        matter what the channel dropped since (loss only makes the
        backup *ineligible*, never silently stale).
        """
        return (replica.role is ReplicaRole.BACKUP
                and replica.is_live
                and self.sim.now - replica.hb_sent_at <= freshness
                and replica.contig_index >= replica.hb_log_index
                and replica.contig_resolves >= replica.hb_resolve_count)

    @staticmethod
    def _rule_identities(table) -> frozenset:
        if table is None:
            return frozenset()
        return frozenset(
            (repr(e.match), e.priority, repr(tuple(e.actions)))
            for e in table
        )

    def quorum_read(self, dpid: int, freshness: float = 0.5) -> QuorumReadResult:
        """Serve a flow-state read from a warm backup when one is fresh
        enough, falling back to the primary otherwise.

        The primary stays the tie-breaker of truth, but every read a
        backup absorbs is load the primary does not serve -- the
        scaling story of sharded reads.  ``quorum_met`` reports whether
        a majority-sized cohort (primary plus eligible backups) stood
        behind the answer; with heavy loss it degrades honestly.
        """
        now = self.sim.now
        eligible = [r for r in self.replicas
                    if self.read_eligible(r, freshness)]
        majority = self._majority()
        primary = self.primary
        primary_live = primary is not None and primary.is_live
        cohort = len(eligible) + (1 if primary_live else 0)
        self.quorum_reads += 1
        if eligible:
            best = max(eligible,
                       key=lambda r: (r.contig_resolves, r.replica_id))
            result = QuorumReadResult(
                dpid=dpid,
                rules=self._rule_identities(best.shadow.get(dpid)),
                served_by=best.replica_id,
                staleness=now - best.hb_sent_at,
                freshness=freshness,
                quorum_met=cohort >= majority,
                from_backup=True,
                resolve_floor=best.contig_resolves,
            )
        else:
            self.quorum_read_fallbacks += 1
            manager = primary.runtime.proxy.manager \
                if primary_live and primary.runtime is not None else None
            table = manager.shadow.get(dpid) if manager is not None else None
            result = QuorumReadResult(
                dpid=dpid,
                rules=self._rule_identities(table),
                served_by=primary.replica_id if primary_live else "none",
                staleness=0.0,
                freshness=freshness,
                quorum_met=cohort >= majority,
                from_backup=False,
                resolve_floor=self.resolve_count,
            )
        if primary_live and primary.telemetry.enabled:
            primary.telemetry.metrics.inc("replication.quorum_reads")
            if not result.from_backup:
                primary.telemetry.metrics.inc(
                    "replication.quorum_read_fallbacks")
        return result

    # -- consistency measurement ------------------------------------------------

    def divergence(self) -> int:
        """Rule-set disagreement between the primary's NetLog shadow and
        the real switches: the size of the symmetric difference of
        (match, priority, actions) rule identities, summed over live
        switches.  E16 asserts this is 0 shortly after a failover.

        The controller's shadow cannot observe data-plane hits, so the
        comparison first runs an instantaneous stats reconcile (the
        same :meth:`~repro.core.netlog.transaction.TransactionManager.
        note_flow_stats` pass the primary's periodic poll runs, minus
        the channel latency), syncs each surviving shadow entry's idle
        clock to its real counterpart's (traffic keeping a rule alive
        is not divergence) and expires both sides at the current sim
        time; what remains is genuine disagreement -- rules one side
        has and the other does not."""
        primary = self.primary
        if primary is None or primary.runtime is None:
            return -1
        manager = primary.runtime.proxy.manager
        now = self.sim.now
        total = 0
        for dpid in self.dpids:
            switch = self.net.switches[dpid]
            if not switch.up:
                continue
            switch.sweep_flows()
            manager.note_flow_stats(switch._flow_stats(FlowStatsRequest()))
            shadow = manager.shadow.get(dpid)
            if shadow is not None:
                for entry in shadow.entries:
                    for real_entry in switch.flow_table.entries:
                        if real_entry.same_rule(entry.match, entry.priority):
                            entry.last_hit_at = max(entry.last_hit_at,
                                                    real_entry.last_hit_at)
                shadow.expire(now, dpid=dpid)
            real = {
                (repr(e.match), e.priority, repr(tuple(e.actions)))
                for e in switch.flow_table
            }
            want = set() if shadow is None else {
                (repr(e.match), e.priority, repr(tuple(e.actions)))
                for e in shadow
            }
            total += len(real ^ want)
        return total

    def shadow_divergence(self, replica_id: str) -> int:
        """Rule-set disagreement between a backup's folded shadow and the
        primary's committed NetLog shadow: the size of the symmetric
        difference of (match, priority, actions) identities summed over
        switches.  Zero means the backup could promote right now and
        lose nothing -- the property a partition-healed resync restores
        (E17 asserts it)."""
        primary = self.primary
        backup = self.replica(replica_id)
        if primary is None or primary.runtime is None:
            return -1
        manager = primary.runtime.proxy.manager
        total = 0
        for dpid in set(manager.shadow) | set(backup.shadow):
            want = {(repr(e.match), e.priority, repr(tuple(e.actions)))
                    for e in manager.shadow.get(dpid, ())}
            got = {(repr(e.match), e.priority, repr(tuple(e.actions)))
                   for e in backup.shadow.get(dpid, ())}
            total += len(want ^ got)
        return total

    def stats(self) -> Dict[str, object]:
        """Summary counters for experiment reporting."""
        return {
            "epoch": self.epoch,
            "primary": self.primary.replica_id if self.primary else None,
            "failovers": len(self.failovers),
            "shipped": self.ship_index,
            "fenced_writes": self.fence.fenced_writes,
            "resyncs": self.resyncs_served,
            "resync_records_sent": self.resync_records_sent,
            "quorum_commits": self.quorum_commits,
            "quorum_stalls": self.quorum_stalls,
            "quorum_degraded": self.quorum_degraded,
            "quorum_reads": self.quorum_reads,
            "quorum_read_fallbacks": self.quorum_read_fallbacks,
            "shard_id": self.shard_id,
            "mode": self.mode.value,
            "mode_switches": self.mode_policy.mode_switches,
            "fenced_mode_transitions": self.mode_policy.fenced_transitions,
            "sig_rejected": self.sig_rejected,
            "auth_faults": len(self.auth_faults),
            "votes_cast": self.votes_cast,
            "votes_confirmed": self.votes_confirmed,
            "vote_conflicts": self.vote_conflicts,
            "vote_stalls": self.vote_stalls,
            "quarantines": self.quarantines,
            "rejoins": self.rejoins,
            "tail_unverified": self.tail_unverified,
            "replicas": {
                r.replica_id: {
                    "role": r.role.value,
                    "ships_received": r.ships_received,
                    "lag": self.backup_lag(r),
                    "stale_frames": r.stale_frames,
                    "resync_requests": r.resync_requests,
                    "resync_dups": r.resync_dups,
                    "quarantined": r.quarantined,
                    "sig_rejected": r.sig_rejected,
                    "vote_conflicts": r.vote_conflicts,
                    "leaf_mismatches": r.leaf_mismatches,
                }
                for r in self.replicas
            },
        }
