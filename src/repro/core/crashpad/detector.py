"""Fail-stop failure detection (§4.1).

"The proxy uses communication failures with the stub to detect that
the SDN-App has crashed.  To further help the proxy in detecting
crashes quickly, the stub also sends periodic heart beat messages."

Three signals feed the detector:

- **crash reports** -- the stub explicitly reports an exception (fast
  path; handled directly by the proxy, not here);
- **event timeouts** -- a dispatched event got no response within
  ``event_timeout`` (communication failure);
- **heartbeat loss** -- no heartbeat within ``heartbeat_timeout``
  (catches hangs, where the process is wedged but never reports).

A fourth signal *reclassifies* the other two: **channel faults**.  A
reliable channel that exhausts its retry budget reports the fault
here; while a fault is recent (``channel_fault_window``), silence from
the app is attributed to the link, not the process -- the suspicion
comes back with reason ``"channel-fault"`` and Crash-Pad must *not*
restore a healthy app over a bad network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class AppHealth:
    """Liveness bookkeeping for one app.

    ``inflight`` maps outstanding event seqs to dispatch times --
    several events may be in flight at once when the proxy runs the §5
    concurrency lanes.
    """

    last_heartbeat: float = 0.0
    inflight: Dict[int, float] = field(default_factory=dict)
    responses: int = 0
    heartbeats: int = 0
    #: When the app's channel last exhausted a retry budget (-inf when
    #: it never has), and how many times it has.
    channel_fault_at: float = float("-inf")
    channel_faults: int = 0


@dataclass(frozen=True)
class Suspicion:
    """One failure suspicion raised by the detector."""

    app_name: str
    reason: str  # "event-timeout" | "heartbeat-loss" | "channel-fault"
    inflight_seq: Optional[int]
    silent_for: float


class FailureDetector:
    """Timeout-based failure detector for AppVisor stubs."""

    def __init__(self, heartbeat_timeout: float = 0.35,
                 event_timeout: float = 0.5,
                 channel_fault_window: float = 1.0, telemetry=None):
        self.heartbeat_timeout = heartbeat_timeout
        self.event_timeout = event_timeout
        #: For how long after a channel fault the app's silence is
        #: blamed on the link rather than the process.
        self.channel_fault_window = channel_fault_window
        self._health: Dict[str, AppHealth] = {}
        self.suspicions_raised = 0
        #: Optional Telemetry; suspicions become trace events (the
        #: "detect" edge of the recovery timeline).  The AppVisor proxy
        #: rebinds this to the deployment's telemetry at composition.
        self.telemetry = telemetry

    def register(self, app_name: str, now: float) -> None:
        self._health[app_name] = AppHealth(last_heartbeat=now)

    def forget(self, app_name: str) -> None:
        self._health.pop(app_name, None)

    # -- signal intake ----------------------------------------------------

    def record_dispatch(self, app_name: str, seq: int, now: float) -> None:
        health = self._health.setdefault(app_name, AppHealth(last_heartbeat=now))
        health.inflight[seq] = now

    def record_response(self, app_name: str, now: float,
                        seq: Optional[int] = None) -> None:
        health = self._health.get(app_name)
        if health is None:
            return
        if seq is None:
            health.inflight.clear()
        else:
            health.inflight.pop(seq, None)
        health.responses += 1
        # A response proves the process is alive; treat it as a heartbeat.
        health.last_heartbeat = now

    def record_heartbeat(self, app_name: str, now: float) -> None:
        health = self._health.get(app_name)
        if health is None:
            return
        health.heartbeats += 1
        health.last_heartbeat = max(health.last_heartbeat, now)

    def record_channel_fault(self, app_name: str, now: float) -> None:
        """The app's channel exhausted a retry budget just now."""
        health = self._health.get(app_name)
        if health is None:
            return
        health.channel_fault_at = now
        health.channel_faults += 1

    def clear(self, app_name: str, now: float) -> None:
        """Reset after recovery: the app is freshly alive."""
        self._health[app_name] = AppHealth(last_heartbeat=now)

    # -- detection -----------------------------------------------------------

    def suspects(self, now: float) -> List[Suspicion]:
        """Apps that look dead right now."""
        suspicions = []
        for name, health in self._health.items():
            # A recent retry-budget exhaustion means the *link* is the
            # prime suspect: the timeouts below would fire on a healthy
            # app whose frames simply are not getting through, so their
            # verdict is reclassified rather than suppressed.
            lossy_link = (now - health.channel_fault_at
                          <= self.channel_fault_window)
            overdue = [(seq, t) for seq, t in health.inflight.items()
                       if now - t > self.event_timeout]
            if overdue:
                seq, dispatched_at = min(overdue, key=lambda item: item[1])
                suspicions.append(Suspicion(
                    app_name=name,
                    reason="channel-fault" if lossy_link else "event-timeout",
                    inflight_seq=seq,
                    silent_for=now - dispatched_at,
                ))
                continue
            if now - health.last_heartbeat > self.heartbeat_timeout:
                oldest = (min(health.inflight) if health.inflight else None)
                suspicions.append(Suspicion(
                    app_name=name,
                    reason="channel-fault" if lossy_link else "heartbeat-loss",
                    inflight_seq=oldest,
                    silent_for=now - health.last_heartbeat,
                ))
        self.suspicions_raised += len(suspicions)
        if suspicions and self.telemetry is not None and self.telemetry.enabled:
            for suspicion in suspicions:
                self.telemetry.tracer.event(
                    "crashpad.suspicion", app=suspicion.app_name,
                    reason=suspicion.reason, seq=suspicion.inflight_seq,
                    silent_for=suspicion.silent_for,
                )
        return suspicions

    def health_of(self, app_name: str) -> Optional[AppHealth]:
        return self._health.get(app_name)
