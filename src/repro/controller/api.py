"""The SDN-App programming interface.

Apps never touch the controller object directly; they receive an
:class:`AppAPI` at startup and use it to emit OpenFlow messages and
read controller services.  The same interface is implemented twice:

- :class:`repro.controller.monolithic.MonolithicAPI` -- direct,
  in-process calls (the FloodLight baseline).
- :class:`repro.core.appvisor.stub.StubAPI` -- calls are buffered and
  shipped over the serialised RPC channel (LegoSDN).

Keeping the interface identical is how LegoSDN runs unmodified apps
("Neither the controller nor the SDN-App require any code change").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import networkx as nx

from repro.openflow.serialization import register_dataclass


class Command(enum.Enum):
    """Listener chain control (FloodLight's ``Command``)."""

    CONTINUE = "continue"
    STOP = "stop"


@register_dataclass
@dataclass(frozen=True)
class HostEntry:
    """A learned host location (device-manager row)."""

    mac: str
    ip: Optional[str]
    dpid: int
    port: int


@register_dataclass
@dataclass(frozen=True)
class TopoView:
    """An immutable snapshot of the discovered topology.

    ``links`` holds canonical ``(dpid_a, port_a, dpid_b, port_b)``
    tuples with ``(dpid_a, port_a) <= (dpid_b, port_b)``.  The snapshot
    is a registered dataclass so the AppVisor proxy can push it to
    stubs whenever the version changes.
    """

    switches: Tuple[int, ...] = ()
    links: Tuple[Tuple[int, int, int, int], ...] = ()
    version: int = 0

    def graph(self) -> "nx.Graph":
        """Build a networkx graph (nodes=dpids, edges carry port attrs)."""
        g = nx.Graph()
        g.add_nodes_from(self.switches)
        for dpid_a, port_a, dpid_b, port_b in self.links:
            g.add_edge(dpid_a, dpid_b, port_a=port_a, port_b=port_b,
                       endpoints=(dpid_a, port_a, dpid_b, port_b))
        return g

    def shortest_path(self, src: int, dst: int) -> Optional[list]:
        """Dpid path from src to dst, or None if unreachable."""
        g = self.graph()
        if src not in g or dst not in g:
            return None
        try:
            return nx.shortest_path(g, src, dst)
        except nx.NetworkXNoPath:
            return None

    def egress_port(self, dpid_from: int, dpid_to: int) -> Optional[int]:
        """The port on ``dpid_from`` facing its neighbour ``dpid_to``."""
        for a, pa, b, pb in self.links:
            if (a, b) == (dpid_from, dpid_to):
                return pa
            if (b, a) == (dpid_from, dpid_to):
                return pb
        return None

    def neighbors(self, dpid: int) -> Tuple[int, ...]:
        out = []
        for a, _, b, _ in self.links:
            if a == dpid:
                out.append(b)
            elif b == dpid:
                out.append(a)
        return tuple(sorted(out))


class AppAPI:
    """Abstract controller interface handed to every SDN-App.

    Subclasses must implement everything; the base class exists to
    document the contract both runtimes honour.
    """

    def now(self) -> float:
        """Current (simulated) time."""
        raise NotImplementedError

    def emit(self, dpid: int, msg) -> None:
        """Send an OpenFlow message (FlowMod/PacketOut/...) to a switch.

        Under LegoSDN the emission joins the current NetLog transaction
        and may be rolled back if the app crashes while handling the
        triggering event.
        """
        raise NotImplementedError

    def topology(self) -> TopoView:
        """Latest discovered topology snapshot."""
        raise NotImplementedError

    def host_location(self, mac: str) -> Optional[HostEntry]:
        """Where a host was last seen, or None."""
        raise NotImplementedError

    def hosts(self) -> Dict[str, HostEntry]:
        """All learned hosts, keyed by MAC."""
        raise NotImplementedError

    def switches(self) -> Tuple[int, ...]:
        """Currently connected switch dpids."""
        raise NotImplementedError

    def log(self, text: str) -> None:
        """Append to the app's log (collected into problem tickets)."""
        raise NotImplementedError

    def counter_inc(self, name: str, delta: int = 1) -> None:
        """Increment a named counter in the counter-store service."""
        raise NotImplementedError
