"""Unit tests for the packet model."""

from dataclasses import replace

from repro.network.packet import (
    BROADCAST,
    ETH_TYPE_IP,
    ETH_TYPE_LLDP,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    Packet,
    icmp_packet,
    tcp_packet,
    udp_packet,
)


def test_packet_ids_unique():
    assert Packet().pkt_id != Packet().pkt_id


def test_broadcast_detection():
    assert Packet(eth_dst=BROADCAST).is_broadcast()
    assert not Packet(eth_dst="00:00:00:00:00:01").is_broadcast()


def test_lldp_detection():
    assert Packet(eth_type=ETH_TYPE_LLDP).is_lldp()
    assert not Packet(eth_type=ETH_TYPE_IP).is_lldp()


def test_reply_swaps_endpoints():
    pkt = tcp_packet("macA", "macB", "1.1.1.1", "2.2.2.2",
                     src_port=1111, dst_port=80)
    rep = pkt.reply(payload="answer")
    assert rep.eth_src == "macB" and rep.eth_dst == "macA"
    assert rep.ip_src == "2.2.2.2" and rep.ip_dst == "1.1.1.1"
    assert rep.tp_src == 80 and rep.tp_dst == 1111
    assert rep.payload == "answer"
    assert rep.pkt_id != pkt.pkt_id


def test_constructors_set_protocols():
    assert tcp_packet("a", "b", "1", "2").ip_proto == IPPROTO_TCP
    assert udp_packet("a", "b", "1", "2").ip_proto == IPPROTO_UDP
    assert icmp_packet("a", "b", "1", "2").ip_proto == IPPROTO_ICMP


def test_immutability_via_replace():
    pkt = Packet(ttl=32)
    hopped = replace(pkt, ttl=31)
    assert pkt.ttl == 32
    assert hopped.ttl == 31
    assert hopped.pkt_id == pkt.pkt_id


def test_default_ttl_positive():
    assert Packet().ttl > 0
