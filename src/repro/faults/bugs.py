"""The bug corpus.

Each :class:`Bug` is a declarative fault: *when* it fires (event type,
switch, payload marker, event count, probability) and *what* it does
(crash, hang, install byzantine rules, or log benignly).  The paper's
observations drive the defaults:

- §2.1: 16% of FlowScale's reported bugs were catastrophic;
  :func:`make_bug_corpus` reproduces that mix.
- §1/§3.3: "given the event-driven nature of SDN-Apps, bugs will most
  likely be deterministic" -- the corpus is 90% deterministic.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional


class InjectedBugError(RuntimeError):
    """The exception a CRASH bug raises (an unhandled app exception)."""


class AppHang(Exception):
    """Signals that the app process wedged: no crash, no response.

    The sandbox interprets this as the process becoming unresponsive,
    so only the heartbeat-based failure detector can notice it.
    """


class BugKind(enum.Enum):
    """The fault taxonomy from the paper's motivation section."""

    CRASH = "crash"                  # fail-stop: unhandled exception
    HANG = "hang"                    # fail-stop variant: wedged process
    BYZANTINE_LOOP = "byz-loop"      # installs a forwarding loop
    BYZANTINE_BLACKHOLE = "byz-blackhole"  # installs a black-hole rule
    STATE_CORRUPTION = "state-corruption"  # corrupts app state, crashes later
    BENIGN = "benign"                # logged error, no failure


#: Kinds that take down the app (the bug study's "catastrophic" class).
CATASTROPHIC_KINDS = frozenset({
    BugKind.CRASH,
    BugKind.HANG,
    BugKind.BYZANTINE_LOOP,
    BugKind.BYZANTINE_BLACKHOLE,
    BugKind.STATE_CORRUPTION,
})


@dataclass
class Bug:
    """One injectable bug."""

    bug_id: str
    kind: BugKind
    event_type: str = "PacketIn"
    dpid: Optional[int] = None
    payload_marker: Optional[str] = None
    after_n_events: int = 0
    deterministic: bool = True
    probability: float = 0.3  # per-match fire probability when non-deterministic
    description: str = ""
    fired_count: int = 0

    # -- trigger ---------------------------------------------------------

    def matches(self, event, event_count: int) -> bool:
        """Does ``event`` (the app's ``event_count``-th) hit the trigger?"""
        if event.type_name != self.event_type:
            return False
        if self.dpid is not None and getattr(event, "dpid", None) != self.dpid:
            return False
        if event_count < self.after_n_events:
            return False
        if self.payload_marker is not None:
            packet = getattr(event, "packet", None)
            payload = getattr(packet, "payload", "") or ""
            if self.payload_marker not in payload:
                return False
        return True

    def fires(self, event, event_count: int, rng: random.Random) -> bool:
        """Trigger check including the (non-)determinism coin flip.

        Deterministic bugs fire on *every* matching event -- replaying
        the offending event after a restore crashes the app again,
        which is why Crash-Pad must transform or ignore it.
        """
        if not self.matches(event, event_count):
            return False
        if self.deterministic:
            return True
        return rng.random() < self.probability

    def is_catastrophic(self) -> bool:
        return self.kind in CATASTROPHIC_KINDS


def make_bug_corpus(n: int = 100, catastrophic_fraction: float = 0.16,
                    deterministic_fraction: float = 0.9,
                    seed: int = 0) -> List[Bug]:
    """Build a corpus with the FlowScale bug-study mix.

    ``catastrophic_fraction`` of the bugs are catastrophic (split
    across crash / hang / byzantine / state-corruption kinds in rough
    proportion to how such failures present in practice: most
    catastrophic bugs are plain unhandled exceptions); the rest are
    benign.  Each bug gets a unique payload marker so experiments can
    trigger bugs individually with crafted packets.
    """
    if not 0.0 <= catastrophic_fraction <= 1.0:
        raise ValueError("catastrophic_fraction must be in [0, 1]")
    rng = random.Random(seed)
    n_catastrophic = round(n * catastrophic_fraction)
    # Weighted split of the catastrophic class (plain crashes dominate
    # real bug trackers).  The kinds are interleaved so that even a
    # small corpus samples every failure mode.
    catastrophic_kinds = (
        BugKind.CRASH, BugKind.HANG,
        BugKind.CRASH, BugKind.BYZANTINE_LOOP,
        BugKind.CRASH, BugKind.BYZANTINE_BLACKHOLE,
        BugKind.CRASH, BugKind.STATE_CORRUPTION,
    )
    bugs = []
    for i in range(n):
        if i < n_catastrophic:
            kind = catastrophic_kinds[i % len(catastrophic_kinds)]
        else:
            kind = BugKind.BENIGN
        bugs.append(
            Bug(
                bug_id=f"bug-{i:03d}",
                kind=kind,
                payload_marker=f"trigger-{i:03d}",
                deterministic=rng.random() < deterministic_fraction,
                probability=0.5,
                description=f"synthetic {kind.value} bug #{i}",
            )
        )
    rng.shuffle(bugs)
    return bugs
