"""Event journal for checkpoint-every-k recovery (§5).

"Rather than checkpointing after every event, we can checkpoint after
every few events.  When we do roll back to the last checkpoint, we can
replay all events since that checkpoint."

The journal records the events delivered since the oldest retained
checkpoint so the stub can rebuild state: restore the newest checkpoint
at-or-before the offending event, then re-run the journalled events
(output-suppressed -- their effects already committed) up to, but
excluding, the offending one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class JournalEntry:
    seq: int
    event: object


class EventJournal:
    """Bounded in-order journal of delivered events."""

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._entries: List[JournalEntry] = []

    def record(self, seq: int, event) -> None:
        self._entries.append(JournalEntry(seq=seq, event=event))
        if len(self._entries) > self.max_entries:
            del self._entries[: len(self._entries) - self.max_entries]

    def events_between(self, from_seq: int, before_seq: int) -> List[JournalEntry]:
        """Entries with ``from_seq <= seq < before_seq`` (replay set)."""
        return [e for e in self._entries if from_seq <= e.seq < before_seq]

    def remove(self, seq: int) -> None:
        """Drop one event (the offending one: it will never be replayed)."""
        self._entries = [e for e in self._entries if e.seq != seq]

    def truncate_before(self, seq: int) -> None:
        """Drop entries older than ``seq`` (superseded by a checkpoint)."""
        self._entries = [e for e in self._entries if e.seq >= seq]

    def __len__(self) -> int:
        return len(self._entries)

    def last_seq(self) -> int:
        return self._entries[-1].seq if self._entries else 0
