"""Table 1 reproduction: the SDN stack and its fate-sharing.

The paper's Table 1 illustrates the canonical stack (application /
controller / server OS / hardware) and §2.1 observes that in a
FloodLight-style stack, "failures of any component in the stack
renders the control plane unavailable".  This bench injects a failure
at each layer of both stacks and records the blast radius.

Expected shape: in the monolithic stack every layer's failure takes
the control plane down; under LegoSDN an application failure is
contained (the rows differ ONLY on the application layer -- LegoSDN
cannot save you from a dead controller or dead hardware, and does not
claim to).
"""

from repro.apps import FlowMonitor, LearningSwitch
from repro.faults import crash_on
from repro.network.topology import linear_topology
from repro.workloads.traffic import inject_marker_packet

from benchmarks.harness import (
    build_legosdn,
    build_monolithic,
    print_table,
    run_once,
)


def _blast_radius(net, runtime):
    """Summarise what is still alive after a failure."""
    return {
        "controller_up": not net.controller.crashed,
        "apps_up": len(runtime.live_apps()),
    }


def _inject_app_crash(net):
    inject_marker_packet(net, "h1", "h3", "BOOM")
    net.run_for(2.0)


def _mono_stack():
    return build_monolithic(
        linear_topology(3, 1),
        [LearningSwitch, FlowMonitor,
         lambda: crash_on(LearningSwitch(name="buggy"),
                          payload_marker="BOOM")],
    )


def _lego_stack():
    return build_legosdn(
        linear_topology(3, 1),
        [LearningSwitch(), FlowMonitor(),
         crash_on(LearningSwitch(name="buggy"), payload_marker="BOOM")],
    )


def _run_layer_failures(build):
    """Fail each stack layer in a fresh deployment; record blast radii."""
    results = {}

    # Layer: Application (a bug in one SDN-App)
    net, runtime = build()
    _inject_app_crash(net)
    results["application"] = _blast_radius(net, runtime)

    # Layer: Controller (a bug in controller code itself)
    net, runtime = build()
    net.controller.crash(RuntimeError("controller bug"), culprit="controller")
    net.run_for(0.5)
    results["controller"] = _blast_radius(net, runtime)

    # Layer: Server OS / hardware (the controller host dies)
    net, runtime = build()
    net.controller.crash(RuntimeError("host power loss"), culprit="hardware")
    net.run_for(0.5)
    results["server/hardware"] = _blast_radius(net, runtime)

    # Layer: Network device (a switch dies; control plane survives)
    net, runtime = build()
    net.switch_down(2)
    net.run_for(1.0)
    results["switch"] = _blast_radius(net, runtime)
    return results


def test_table1_stack_fate_sharing(benchmark):
    def experiment():
        return {
            "monolithic": _run_layer_failures(_mono_stack),
            "legosdn": _run_layer_failures(_lego_stack),
        }

    results = run_once(benchmark, experiment)
    rows = []
    for layer in ("application", "controller", "server/hardware", "switch"):
        mono = results["monolithic"][layer]
        lego = results["legosdn"][layer]
        rows.append([
            layer,
            "DOWN" if not mono["controller_up"] else "up",
            mono["apps_up"],
            "DOWN" if not lego["controller_up"] else "up",
            lego["apps_up"],
        ])
    print_table(
        "Table 1: failure blast radius per stack layer (3 apps hosted)",
        ["failed layer", "mono ctrl", "mono apps up",
         "lego ctrl", "lego apps up"],
        rows,
    )
    benchmark.extra_info["results"] = results

    mono, lego = results["monolithic"], results["legosdn"]
    # Monolithic: an app bug kills the whole control plane.
    assert not mono["application"]["controller_up"]
    assert mono["application"]["apps_up"] == 0
    # LegoSDN: the app failure is contained; everything else survives.
    assert lego["application"]["controller_up"]
    assert lego["application"]["apps_up"] == 3
    # Both stacks die with the controller/hardware (out of scope for LegoSDN).
    for layer in ("controller", "server/hardware"):
        assert not mono[layer]["controller_up"]
        assert not lego[layer]["controller_up"]
    # A switch failure kills neither control plane.
    assert mono["switch"]["controller_up"]
    assert lego["switch"]["controller_up"]
