"""The planted 3-event-dependent failure the debug loop certifies on.

State is set by events A and B (arming markers), and the crash fires
on C (the trigger) -- with noise packets interleaved so the minimizer
has something real to delete.  Run under configurable chaos on the
proxy<->stub channel, the minimal causal sequence is exactly
{A, B, C}; ``repro minimize`` and the E21 benchmark assert that.
"""

from __future__ import annotations

from repro.debug.replay import Recording, ReplayHarness

ARM_MARKERS = ("ARM-A", "ARM-B")
TRIGGER_MARKER = "TRIGGER-C"


def planted_armed_harness(seed: int = 0, loss: float = 0.2,
                          **harness_kwargs) -> ReplayHarness:
    from repro.faults import arm_crash_on

    chaos = {"seed": seed, "loss": loss} if loss > 0 else None
    return ReplayHarness(
        topology="linear", size=3, seed=seed, chaos=chaos,
        apps=[lambda: arm_crash_on(arm_markers=ARM_MARKERS,
                                   trigger_marker=TRIGGER_MARKER)],
        **harness_kwargs,
    )


def planted_armed_recording(seed: int = 0, loss: float = 0.2,
                            noise: int = 4,
                            **harness_kwargs):
    """Record the planted scenario; returns ``(harness, recording)``.

    The drive injects ARM-A, ``noise`` irrelevant packets spread
    around the arming events, ARM-B, and finally TRIGGER-C -- so the
    capture holds ``noise + 3`` events of which exactly three are
    causal.
    """
    from repro.workloads.traffic import inject_marker_packet

    harness = planted_armed_harness(seed=seed, loss=loss, **harness_kwargs)

    def drive(net, runtime):
        hosts = sorted(net.hosts)
        pairs = [(hosts[i % len(hosts)], hosts[(i + 1) % len(hosts)])
                 for i in range(max(noise, 1))]
        markers = [ARM_MARKERS[0]]
        markers += [f"NOISE-{i}" for i in range(noise // 2)]
        markers += [ARM_MARKERS[1]]
        markers += [f"NOISE-{i}" for i in range(noise // 2, noise)]
        markers += [TRIGGER_MARKER]
        for i, marker in enumerate(markers):
            src, dst = pairs[i % len(pairs)]
            inject_marker_packet(net, src, dst, marker)
            net.run_for(0.15)

    return harness, harness.record(drive)
