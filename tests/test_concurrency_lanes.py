"""Tests for §5 concurrency lanes.

"SDN-Apps, being event-driven, can handle multiple events in parallel
if they [arrive] from multiple switches.  Fortunately, these events
are often handled by different threads and thus we can pin-point which
event causes the thread to crash."

With ``parallel_lanes=True``, the proxy keeps one in-flight event per
originating switch: per-lane FIFO is preserved, cross-lane pipelining
overlaps the RPC/checkpoint latency, and a crash is attributed to the
exact in-flight event while other lanes' events are rolled back and
re-delivered.
"""

import pytest

from repro.apps import FlowMonitor, Hub, LearningSwitch
from repro.core.appvisor.proxy import AppStatus
from repro.core.runtime import LegoSDNRuntime
from repro.faults import crash_on
from repro.network.net import Network
from repro.network.topology import linear_topology
from repro.workloads.traffic import inject_marker_packet


def build(apps, parallel, switches=4, **kwargs):
    net = Network(linear_topology(switches, 1), seed=0)
    runtime = LegoSDNRuntime(net.controller, parallel_lanes=parallel,
                             **kwargs)
    for app in apps:
        runtime.launch_app(app)
    net.start()
    net.run_for(1.0)
    return net, runtime


def burst_all_switches(net, tag):
    """One fresh flow entering at every switch simultaneously."""
    names = sorted(net.hosts)
    for i, src in enumerate(names):
        dst = names[(i + 1) % len(names)]
        inject_marker_packet(net, src, dst, f"{tag}-{src}")


class TestThroughput:
    def _drain_time(self, parallel):
        net, runtime = build([Hub()], parallel)
        start = net.now
        burst_all_switches(net, "burst")
        record = runtime.record("hub")
        # run until the app has completed one event per switch
        while net.now - start < 5.0 and record.events_completed < 4:
            net.run_for(0.01)
        return net.now - start, record.events_completed

    def test_lanes_pipeline_multi_switch_bursts(self):
        serial_time, serial_done = self._drain_time(parallel=False)
        lane_time, lane_done = self._drain_time(parallel=True)
        assert serial_done >= 4 and lane_done >= 4
        # Four checkpoints+round-trips overlap across lanes: a real
        # speedup, not a rounding artifact.
        assert lane_time < serial_time * 0.6

    def test_per_lane_order_preserved(self):
        class Recorder(FlowMonitor):
            name = "rec"

            def __init__(self):
                super().__init__(name="rec")
                self.order = []

            def on_packet_in(self, event):
                self.order.append((event.dpid, event.packet.payload))
                return super().on_packet_in(event)

        net, runtime = build([Recorder()], parallel=True,
                             checkpoint_interval=1000)
        inject_marker_packet(net, "h1", "h2", "first")
        inject_marker_packet(net, "h1", "h2", "second")
        net.run_for(1.5)
        app = runtime.app("rec")
        same_switch = [p for dpid, p in app.order if dpid == 1]
        assert same_switch.index("first") < same_switch.index("second")


class TestCrashAttribution:
    def test_offending_lane_identified_others_redelivered(self):
        """A crash on one switch's event must not lose the events that
        were in flight from other switches."""
        app = crash_on(FlowMonitor(name="app"), payload_marker="BOOM")
        net, runtime = build([app], parallel=True)
        # simultaneous burst: one poisoned, three innocent
        names = sorted(net.hosts)
        inject_marker_packet(net, names[0], names[1], "BOOM")
        for src, dst in ((names[1], names[2]), (names[2], names[3]),
                         (names[3], names[0])):
            inject_marker_packet(net, src, dst, f"innocent-{src}")
        net.run_for(3.0)
        record = runtime.record("app")
        assert record.crash_count >= 1
        assert record.status is AppStatus.UP
        # Every innocent event was eventually observed by the app.
        observed = {p for (s, d), n in
                    runtime.app("app").inner.pair_packets.items()
                    for p in [n]}
        pairs = runtime.app("app").inner.pair_packets
        # the three innocent PacketIns each hit at least their ingress
        # switch; after recovery the monitor's tallies reflect them
        assert sum(pairs.values()) >= 3
        ticket = runtime.tickets.for_app("app")[0]
        assert "BOOM" in ticket.offending_event

    @staticmethod
    def _max_concurrent_inflights(net, runtime, name, window=0.05):
        record = runtime.record(name)
        peak = len(record.inflights)
        start = net.now
        while net.now - start < window:
            net.run_for(0.0005)
            peak = max(peak, len(record.inflights))
        return peak

    def test_serial_mode_unchanged(self):
        """The default path still enforces one in-flight per app."""
        net, runtime = build([Hub()], parallel=False)
        burst_all_switches(net, "x")
        assert self._max_concurrent_inflights(net, runtime, "hub") <= 1

    def test_parallel_mode_multiple_inflight(self):
        net, runtime = build([Hub()], parallel=True)
        burst_all_switches(net, "x")
        assert self._max_concurrent_inflights(net, runtime, "hub") >= 2
