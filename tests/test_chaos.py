"""Chaos testing: random fault storms against the full stack.

These are the "does the whole thing hold together" tests: seeded
random mixes of link flaps, switch flaps, and bug triggers, with the
invariants that matter asserted at the end -- controller alive, apps
recovered, forwarding state loop-free, and NetLog's shadow still in
sync with reality.
"""

import pytest

from repro.apps import FlowMonitor, LearningSwitch, ShortestPathRouting
from repro.core.netlog.rollback import tables_equal
from repro.core.runtime import LegoSDNRuntime
from repro.faults import crash_on
from repro.invariants import InvariantChecker, NetSnapshot, build_host_probes
from repro.network.net import Network
from repro.network.topology import ring_topology
from repro.workloads.failure import FailureSchedule
from repro.workloads.traffic import TrafficWorkload

DURATION = 8.0


def run_chaos(seed):
    net = Network(ring_topology(5, 1), seed=seed)
    runtime = LegoSDNRuntime(net.controller)
    runtime.launch_app(LearningSwitch())
    runtime.launch_app(FlowMonitor())
    runtime.launch_app(crash_on(ShortestPathRouting(name="frag"),
                                payload_marker="CHAOS"))
    net.start()
    net.run_for(1.5)
    TrafficWorkload(net, rate=30, selection="random",
                    seed=seed).start(DURATION * 0.8)
    FailureSchedule.chaos(net, DURATION, rate=1.5,
                          markers=["CHAOS"], seed=seed).apply(net)
    net.run_for(DURATION + 3.0)
    return net, runtime


class TestChaosStorm:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_control_plane_survives(self, seed):
        net, runtime = run_chaos(seed)
        assert runtime.is_up
        # every faulty-app crash was recovered (no app left dead)
        assert set(runtime.live_apps()) == {"frag", "learning_switch",
                                            "monitor"}
        stats = runtime.stats()
        for name in stats:
            assert stats[name]["recoveries"] == stats[name]["crashes"], name

    @pytest.mark.parametrize("seed", [1, 2])
    def test_shadow_tables_still_consistent(self, seed):
        net, runtime = run_chaos(seed)
        net.run_for(1.0)  # drain in-flight control traffic
        manager = runtime.proxy.manager
        for dpid, switch in net.switches.items():
            if not switch.up:
                continue
            assert tables_equal(
                {dpid: manager.shadow_table(dpid)},
                {dpid: switch.flow_table},
            ), f"shadow diverged on s{dpid} (seed {seed})"

    @pytest.mark.parametrize("seed", [1, 2])
    def test_no_persistent_forwarding_loops(self, seed):
        """Transient loops can form while MAC tables are stale during a
        storm (the classic L2-on-a-ring hazard -- real networks need
        STP for exactly this); what must NOT happen is a loop outliving
        the idle timeout once the storm and its traffic stop."""
        net, runtime = run_chaos(seed)
        net.run_for(LearningSwitch.IDLE_TIMEOUT
                    + ShortestPathRouting.IDLE_TIMEOUT + 1.0)
        snap = NetSnapshot.from_network(net)
        checker = InvariantChecker(snap)
        assert checker.check_loops(build_host_probes(snap)) == []

    def test_service_recovers_after_the_storm(self):
        net, runtime = run_chaos(seed=4)
        live_hosts = [
            spec.name for spec in net.topology.hosts
            if net.switches[spec.dpid].up and net.host_link(spec.name).up
        ]
        pairs = [(a, b) for a in live_hosts for b in live_hosts if a != b]
        assert net.reachability(pairs=pairs, wait=2.0) >= 0.9
