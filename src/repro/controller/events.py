"""Controller-level events delivered to SDN-Apps.

These complement the raw OpenFlow messages: switch joins/leaves and
discovered/removed inter-switch links.  They are ordinary registered
dataclasses so they can cross the AppVisor RPC boundary, and they are
precisely the event classes Crash-Pad's equivalence transformations
rewrite (a ``SwitchLeave`` becomes the series of ``LinkRemoved`` events
for its links, and vice versa -- §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.openflow.serialization import register_dataclass


@dataclass(frozen=True)
class ControllerEvent:
    """Base class for controller-generated (non-OpenFlow) events."""

    @property
    def type_name(self) -> str:
        return type(self).__name__


@register_dataclass
@dataclass(frozen=True)
class SwitchJoin(ControllerEvent):
    """A switch connected (or reconnected) to the controller."""

    dpid: int


@register_dataclass
@dataclass(frozen=True)
class SwitchLeave(ControllerEvent):
    """A switch disconnected -- the paper's "switch down event"."""

    dpid: int


@register_dataclass
@dataclass(frozen=True)
class LinkDiscovered(ControllerEvent):
    """An inter-switch link observed by LLDP discovery."""

    dpid_a: int
    port_a: int
    dpid_b: int
    port_b: int

    def canonical(self) -> Tuple[int, int, int, int]:
        """Direction-independent identity for this link."""
        if (self.dpid_a, self.port_a) <= (self.dpid_b, self.port_b):
            return (self.dpid_a, self.port_a, self.dpid_b, self.port_b)
        return (self.dpid_b, self.port_b, self.dpid_a, self.port_a)


@register_dataclass
@dataclass(frozen=True)
class LinkRemoved(ControllerEvent):
    """An inter-switch link went away -- the paper's "link down event"."""

    dpid_a: int
    port_a: int
    dpid_b: int
    port_b: int

    def canonical(self) -> Tuple[int, int, int, int]:
        if (self.dpid_a, self.port_a) <= (self.dpid_b, self.port_b):
            return (self.dpid_a, self.port_a, self.dpid_b, self.port_b)
        return (self.dpid_b, self.port_b, self.dpid_a, self.port_a)


@register_dataclass
@dataclass(frozen=True)
class AppCrashed(ControllerEvent):
    """Informational event: an app crashed (LegoSDN runtimes emit this
    so monitoring apps and the metrics collector can observe failures
    without being coupled to Crash-Pad)."""

    app_name: str
    reason: str = ""
