"""Ablation A1: heartbeat cadence vs detection latency vs overhead.

§4.1: "To further help the proxy in detecting crashes quickly, the
stub also sends periodic heart beat messages."  Faster heartbeats
detect hangs sooner but cost channel bytes; this sweep quantifies the
trade so an operator can pick a cadence.

Expected shape: hang-detection latency scales with the heartbeat
timeout (itself proportional to the interval); heartbeat byte overhead
scales inversely with the interval; explicit crash reports are
unaffected (they never wait for a timer).
"""

from repro.apps import LearningSwitch
from repro.core.crashpad.detector import FailureDetector
from repro.faults import BugKind, crash_on
from repro.network.net import Network
from repro.network.topology import linear_topology
from repro.core.runtime import LegoSDNRuntime
from repro.workloads.traffic import inject_marker_packet

from benchmarks.harness import print_table, run_once

INTERVALS = (0.02, 0.05, 0.1, 0.2, 0.4)
QUIET_WINDOW = 4.0


def _run(heartbeat_interval):
    net = Network(linear_topology(2, 1), seed=0)
    runtime = LegoSDNRuntime(
        net.controller,
        heartbeat_interval=heartbeat_interval,
    )
    # scale the detector's patience with the cadence, as a real
    # deployment would (3 missed beats + slack)
    runtime.proxy.detector = FailureDetector(
        heartbeat_timeout=heartbeat_interval * 3.5,
        event_timeout=max(0.5, heartbeat_interval * 5),
    )
    runtime.launch_app(crash_on(LearningSwitch(name="app"),
                                payload_marker="H", kind=BugKind.HANG))
    net.start()
    net.run_for(1.0)
    channel = runtime.channels["app"]
    bytes_before = channel.bytes_carried
    quiet_start = net.now
    net.run_for(QUIET_WINDOW)
    idle_bytes = channel.bytes_carried - bytes_before
    injected_at = net.now
    inject_marker_packet(net, "h1", "h2", "H")
    net.run_for(4.0)
    tickets = runtime.tickets.for_app("app")
    detection = (tickets[0].time - injected_at) if tickets else None
    return {
        "interval": heartbeat_interval,
        "detection_latency": detection,
        "idle_bytes_per_s": idle_bytes / QUIET_WINDOW,
        "recovered": runtime.stats()["app"]["recoveries"] >= 1,
    }


def test_ablation_heartbeat_cadence(benchmark):
    def experiment():
        return [_run(interval) for interval in INTERVALS]

    rows = run_once(benchmark, experiment)
    print_table(
        "A1: heartbeat cadence vs hang-detection latency vs idle overhead",
        ["interval (ms)", "hang detected after (ms)",
         "idle channel bytes/s", "recovered"],
        [[f"{r['interval'] * 1000:.0f}",
          f"{r['detection_latency'] * 1000:.0f}" if r["detection_latency"]
          else "NOT DETECTED",
          f"{r['idle_bytes_per_s']:.0f}",
          "yes" if r["recovered"] else "NO"]
         for r in rows],
    )
    benchmark.extra_info["sweep"] = rows

    assert all(r["detection_latency"] is not None for r in rows)
    assert all(r["recovered"] for r in rows)
    # Detection latency grows with the interval...
    latencies = [r["detection_latency"] for r in rows]
    assert latencies[0] < latencies[-1]
    # ...and idle overhead shrinks with it.
    overheads = [r["idle_bytes_per_s"] for r in rows]
    assert overheads[0] > overheads[-1] * 2
