#!/usr/bin/env python3
"""Datacenter fault drill: a realistic multi-app deployment under fire.

The scenario the paper's introduction motivates: a production network
running third-party apps of mixed quality -- shortest-path routing
(RouteFlow), a security firewall (BigTap), a traffic monitor (Stratos)
-- plus one buggy app.  The operator writes a compromise-policy file:
the firewall must never compromise correctness; topology events may be
transformed; everything else can be skipped.

A scripted fault timeline then hits the deployment: bug-triggering
packets, a link failure, and a full switch failure.  The drill reports
availability, recoveries, and the tickets filed.

Run:  python examples/datacenter_fault_drill.py
"""

from repro.apps import DenyRule, Firewall, FlowMonitor, ShortestPathRouting
from repro.core.crashpad.policy_lang import PolicyTable
from repro.core.runtime import LegoSDNRuntime
from repro.faults import crash_on
from repro.network.net import Network
from repro.network.packet import IPPROTO_TCP
from repro.network.topology import ring_topology
from repro.workloads.failure import FailureSchedule

OPERATOR_POLICY = """
# Security first: never trade the firewall's correctness for uptime.
app=firewall  event=*            policy=no-compromise
# Topology events carry routing-critical information: transform them.
app=*         event=SwitchLeave  policy=equivalence
app=*         event=LinkRemoved  policy=equivalence
# Everything else: stay up, skip the poison event.
app=*         event=*            policy=absolute
"""


def main():
    # A 5-switch ring gives every host a redundant path.
    net = Network(ring_topology(5, 1), seed=7)
    runtime = LegoSDNRuntime(
        net.controller,
        policy_table=PolicyTable.parse(OPERATOR_POLICY),
    )

    # The app mix: routing with a deterministic switch-down bug, a
    # firewall blocking telnet to h2, and a monitor.
    runtime.launch_app(crash_on(ShortestPathRouting(),
                                event_type="SwitchLeave"))
    runtime.launch_app(Firewall(deny_rules=(
        DenyRule(ip_dst="10.0.0.2", ip_proto=IPPROTO_TCP, tp_dst=23),
    )))
    runtime.launch_app(FlowMonitor())
    net.start()
    net.run_for(2.0)
    print(f"[{net.now:5.2f}s] deployment up, "
          f"reachability {net.reachability(wait=1.5):.0%}")

    # The fault timeline.
    drill = (FailureSchedule()
             .link_down(5.0, 1, 2)     # a cable gets pulled
             .link_up(8.0, 1, 2)       # ...and replugged
             .switch_down(10.0, 4))    # a whole ToR dies -> bug fires
    drill.apply(net)
    net.run_for(12.0)

    # Aftermath.
    survivors = [(a, b) for a in ("h1", "h2", "h3", "h5")
                 for b in ("h1", "h2", "h3", "h5") if a != b]
    reach = net.reachability(pairs=survivors, wait=2.0)
    print(f"[{net.now:5.2f}s] drill complete")
    print(f"  controller up:             {runtime.is_up}")
    print(f"  live apps:                 {runtime.live_apps()}")
    print(f"  survivor reachability:     {reach:.0%}")
    for name, stats in sorted(runtime.stats().items()):
        print(f"  {name:>16}: crashes={stats['crashes']} "
              f"recoveries={stats['recoveries']} "
              f"transformed={stats['transformed']} "
              f"skipped={stats['skipped']}")
    print(f"  tickets filed:             {len(runtime.tickets)}")
    for ticket in runtime.tickets.all():
        print(f"    #{ticket.ticket_id} {ticket.app_name}: "
              f"{ticket.failure_kind} -> {ticket.recovery_policy} "
              f"({ticket.recovery_note})")

    # The firewall still enforces its deny rule after all that.
    h1, h2 = net.host("h1"), net.host("h2")
    h2.clear_history()
    h1.send_tcp(h2, dst_port=23)
    net.run_for(1.0)
    telnet_blocked = not [p for _, p in h2.received
                          if not p.is_lldp() and p.tp_dst == 23]
    print(f"  telnet to h2 still denied: {telnet_blocked}")


if __name__ == "__main__":
    main()
