"""Equivalence transformations of failure-inducing events (§3.3).

"Equivalence Compromise transforms the event into an equivalent one,
e.g. a switch down event can be transformed into a series of link down
events.  Alternatively, a link down event may be transformed into a
switch down event.  This transformation exploits the domain knowledge
that certain events are super-sets of other events and vice versa."

Both directions are provided:

- ``SwitchLeave(d)`` -> the list of ``LinkRemoved`` events for every
  discovered link of ``d`` (decompose the super-set event);
- ``LinkRemoved(a,..,b,..)`` -> ``SwitchLeave`` of one endpoint
  (escalate to the super-set event);
- ``PortStatus(down)`` -> the ``LinkRemoved`` for the affected link.

Transforms need the topology as it was *before* the event (the dead
switch's links are already gone from the live view), so the caller
passes the last topology snapshot it pushed to the app.
"""

from __future__ import annotations

from typing import List, Optional

from repro.controller.api import TopoView
from repro.controller.events import LinkRemoved, SwitchLeave
from repro.openflow.messages import PortStatus


class EventTransformer:
    """Domain-knowledge event rewriting."""

    def __init__(self, escalate_link_to_switch: bool = False):
        #: When True, LinkRemoved escalates to SwitchLeave (the paper's
        #: "alternatively" direction); when False it is left
        #: untransformable and recovery falls back to ignoring it.
        self.escalate_link_to_switch = escalate_link_to_switch
        self.transform_count = 0

    def transform(self, event, topo: TopoView) -> Optional[List[object]]:
        """Return replacement events, or None if no equivalence exists.

        An empty list is a valid transformation result ("the switch had
        no links"); None means the caller should fall back to another
        policy (Crash-Pad falls back to Absolute Compromise).
        """
        result = self._dispatch(event, topo)
        if result is not None:
            self.transform_count += 1
        return result

    def _dispatch(self, event, topo: TopoView) -> Optional[List[object]]:
        if isinstance(event, SwitchLeave):
            return self._switch_leave_to_link_removals(event, topo)
        if isinstance(event, LinkRemoved):
            if self.escalate_link_to_switch:
                return [SwitchLeave(dpid=event.dpid_a)]
            return None
        if isinstance(event, PortStatus) and not event.link_up:
            return self._port_down_to_link_removed(event, topo)
        return None

    @staticmethod
    def _switch_leave_to_link_removals(event: SwitchLeave,
                                       topo: TopoView) -> List[object]:
        """Decompose a switch-down into per-link link-downs.

        Uses the pre-failure topology: each link incident to the dead
        switch becomes one LinkRemoved.  The result is *weaker* than
        the original event (the app never learns the switch itself is
        gone) but preserves the routing-relevant information, which is
        exactly the correctness/availability trade the policy makes.
        """
        removals = []
        for dpid_a, port_a, dpid_b, port_b in topo.links:
            if event.dpid in (dpid_a, dpid_b):
                removals.append(LinkRemoved(dpid_a, port_a, dpid_b, port_b))
        return removals

    @staticmethod
    def _port_down_to_link_removed(event: PortStatus,
                                   topo: TopoView) -> Optional[List[object]]:
        for dpid_a, port_a, dpid_b, port_b in topo.links:
            if ((dpid_a, port_a) == (event.dpid, event.port)
                    or (dpid_b, port_b) == (event.dpid, event.port)):
                return [LinkRemoved(dpid_a, port_a, dpid_b, port_b)]
        return None
