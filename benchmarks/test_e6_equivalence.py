"""E6: the equivalence transformation preserves correctness (§3.3).

"Equivalence Compromise transforms the event into an equivalent one,
e.g. a switch down event can be transformed into a series of link down
events."  On a ring (redundant paths), a routing app that crashes on
SwitchLeave is recovered under Absolute (event ignored: the app never
learns the switch died, stale routes linger) and under Equivalence
(the app processes the per-link LinkRemoved decomposition and
re-routes around the failure).

Expected shape: post-failure reachability among surviving hosts is
strictly higher under Equivalence than under Absolute; both keep the
app and controller alive.
"""

from repro.apps import ShortestPathRouting
from repro.core.crashpad.policy_lang import PolicyTable
from repro.faults import crash_on
from repro.network.topology import ring_topology

from benchmarks.harness import build_legosdn, print_table, run_once

#: 5-ring with s3 killed: h2<->h4 traffic crossed s3 on the strictly
#: shortest path (2-3-4), so stale routes through s3 are guaranteed.
SURVIVOR_PAIRS = [(a, b) for a in ("h1", "h2", "h4", "h5")
                  for b in ("h1", "h2", "h4", "h5") if a != b]


class SwitchEventRouting(ShortestPathRouting):
    """Routing that learns about failures ONLY from SwitchLeave.

    It inherits the LinkRemoved handler (so transformed events still
    work) but does not subscribe to LinkRemoved -- the failure reaches
    it purely as the switch-down event the bug fires on.  This is the
    paper's exact scenario: ignoring the event leaves the app blind to
    the failure, transforming it does not.
    """

    subscriptions = ("PacketIn", "SwitchLeave")


def _run(policy_name):
    net, runtime = build_legosdn(
        ring_topology(5, 1),
        [crash_on(SwitchEventRouting(), event_type="SwitchLeave")],
        policy_table=PolicyTable.parse(
            f"app=* event=* policy={policy_name}"),
        warmup=1.5,
    )
    reach_before = net.reachability(wait=1.5)
    net.switch_down(3)
    net.run_for(3.0)
    reach_after = net.reachability(pairs=SURVIVOR_PAIRS, wait=2.0)
    stats = runtime.stats()["routing"]
    return {
        "reach_before": reach_before,
        "reach_after": reach_after,
        "crashes": stats["crashes"],
        "transformed": stats["transformed"],
        "skipped": stats["skipped"],
        "controller_up": runtime.is_up,
    }


def test_e6_equivalence_vs_absolute(benchmark):
    def experiment():
        return {
            "absolute": _run("absolute"),
            "equivalence": _run("equivalence"),
        }

    r = run_once(benchmark, experiment)
    print_table(
        "E6: switch-down crash in the routing app on a 5-ring "
        "(reachability among the 4 surviving hosts)",
        ["policy", "reach before", "reach after", "crashes",
         "transformed", "skipped"],
        [[name, f"{row['reach_before']:.0%}", f"{row['reach_after']:.0%}",
          row["crashes"], row["transformed"], row["skipped"]]
         for name, row in r.items()],
    )
    benchmark.extra_info["results"] = r

    assert r["absolute"]["reach_before"] == 1.0
    assert r["equivalence"]["reach_before"] == 1.0
    # Both recover the app and keep the controller up.
    assert all(row["controller_up"] for row in r.values())
    assert r["absolute"]["skipped"] == 1
    assert r["equivalence"]["transformed"] == 1
    # The paper's point: transforming preserves strictly more
    # correctness than ignoring.
    assert r["equivalence"]["reach_after"] == 1.0
    assert r["equivalence"]["reach_after"] > r["absolute"]["reach_after"]
