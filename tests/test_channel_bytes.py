"""Per-channel wire-byte accounting and the bytes/event derivation.

The channel endpoints count every payload byte handed to / delivered
by the proxy<->stub channel; telemetry folds those into
``channel.bytes_sent`` / ``channel.bytes_recv`` counters, and
``bytes_per_event`` derives the serialization-efficiency number the
E19 codec A/B reports (also exposed as a Prometheus gauge and in
``repro trace critical-path``).
"""

from repro.apps import LearningSwitch
from repro.core.runtime import LegoSDNRuntime
from repro.network.net import Network
from repro.network.topology import linear_topology
from repro.telemetry import Telemetry
from repro.telemetry.export import bytes_per_event, prometheus_text


def _run(duration=1.5):
    telemetry = Telemetry(enabled=True)
    net = Network(linear_topology(3, 1), seed=0, telemetry=telemetry)
    runtime = LegoSDNRuntime(net.controller)
    runtime.launch_app(LearningSwitch())
    net.start()
    net.run_for(1.0)
    net.reachability()
    net.run_for(duration)
    return telemetry, net, runtime


def test_endpoints_count_frames_and_bytes():
    telemetry, net, runtime = _run()
    channel = runtime.stub("learning_switch").endpoint.channel
    for endpoint in (channel.proxy_end, channel.stub_end):
        assert endpoint.frames_sent > 0
        assert endpoint.bytes_sent > 0
        assert endpoint.frames_recv > 0
        assert endpoint.bytes_recv > 0
    stats = channel.byte_stats()
    # Conservation: what one side sent, the other side received --
    # modulo frames still in flight when the clock stopped.
    assert stats["stub_bytes_recv"] <= stats["proxy_bytes_sent"]
    assert stats["proxy_bytes_recv"] <= stats["stub_bytes_sent"]
    assert stats["bytes_carried"] > 0


def test_telemetry_counters_and_derived_bytes_per_event():
    telemetry, net, runtime = _run()
    counters = telemetry.metrics.counters
    assert counters["channel.bytes_sent"] > 0
    assert counters["channel.bytes_recv"] > 0
    derived = bytes_per_event(telemetry.metrics)
    events = telemetry.metrics.recorders["span.appvisor.event"].count
    assert derived is not None
    assert derived == counters["channel.bytes_sent"] / events


def test_prometheus_exposition_includes_bytes_metrics():
    telemetry, net, runtime = _run()
    text = prometheus_text(telemetry.metrics)
    assert "repro_channel_bytes_sent" in text
    assert "repro_channel_bytes_recv" in text
    assert "repro_channel_bytes_per_event" in text


def test_bytes_per_event_none_without_data():
    telemetry = Telemetry(enabled=True)
    assert bytes_per_event(telemetry.metrics) is None
