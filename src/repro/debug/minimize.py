"""Minimal causal sequences: STS-style ddmin over captured runs (§5).

"Using its event logs, LegoSDN can determine the minimal causal
sequence of events that led to the crash."  The checkpoint-level
variant lives in :mod:`repro.core.crashpad.sts` (scratch replicas of
one app); this module is the whole-deployment version: each probe is a
full :meth:`~repro.debug.replay.ReplayHarness.replay` of an event
subsequence, and a subsequence "causes" the failure when its replay
reproduces the recording's :class:`FailureSignature`.

The search is seeded by the failing event's causal trace: events
sharing the offending trace id (the offender itself plus any
re-delivered collateral the tracer linked to it) are probed first as a
candidate sequence, and only when that cheap guess fails does the
search fall back to delta debugging over the full capture.  Everything
is deterministic -- the probe order is a pure function of the capture,
and every replay re-seeds from the recording's config -- so the same
recording always minimizes to the same sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.debug.capture import CapturedEvent
from repro.debug.replay import Recording, ReplayHarness


class MinimizationError(RuntimeError):
    """The full captured sequence did not reproduce the failure."""


def ddmin(items: Sequence, test: Callable[[list], bool]) -> list:
    """Zeller's ddmin: a 1-minimal sublist of ``items`` passing ``test``.

    ``test`` must hold for ``items`` itself.  Subsets preserve the
    original relative order (event sequences are order-sensitive).
    The algorithm is fully deterministic: chunk boundaries depend only
    on lengths, never on randomness.
    """
    items = list(items)
    if not test(items):
        raise ValueError("test must hold for the full input")
    granularity = 2
    while len(items) >= 2:
        size = len(items) / granularity
        chunks = [items[round(i * size):round((i + 1) * size)]
                  for i in range(granularity)]
        reduced = False
        for chunk in chunks:
            if len(chunk) < len(items) and chunk and test(chunk):
                items = chunk
                granularity = 2
                reduced = True
                break
        if not reduced:
            for i in range(granularity):
                complement = [x for chunk in chunks[:i] for x in chunk] + \
                             [x for chunk in chunks[i + 1:] for x in chunk]
                if complement and len(complement) < len(items) \
                        and test(complement):
                    items = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


class _Prober:
    """Replays subsequences, caching verdicts by index tuple."""

    def __init__(self, harness: ReplayHarness, target):
        self.harness = harness
        self.target = target
        self.probes = 0
        self._cache = {}

    def test(self, events: List[CapturedEvent]) -> bool:
        key = tuple(e.index for e in events)
        if key in self._cache:
            return self._cache[key]
        self.probes += 1
        verdict = self.harness.replay(events).reproduces(self.target)
        self._cache[key] = verdict
        return verdict


@dataclass
class MinimizedRepro:
    """The shortest reproducing sequence, plus how to run it."""

    original_length: int
    #: JSON-safe step rows: event description, dpid, recording trace
    #: id, and the top-3 critical-path self-time summary from the
    #: verification replay.
    steps: List[dict]
    config: dict
    signature: dict
    probes: int
    #: The live captured events (for a standalone ``replay()`` call);
    #: excluded from :meth:`to_dict`.
    minimal_events: List[CapturedEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def to_dict(self) -> dict:
        return {
            "original_length": self.original_length,
            "minimized_length": len(self.steps),
            "steps": [dict(s) for s in self.steps],
            "config": self.config,
            "signature": dict(self.signature),
            "probes": self.probes,
        }

    def render(self) -> str:
        lines = [
            f"minimized repro: {len(self.steps)} of "
            f"{self.original_length} captured event(s) "
            f"({self.probes} replay probes)",
        ]
        for step in self.steps:
            lines.append(f"  step {step['step']}: s{step['dpid']} "
                         f"{step['event']} (trace {step['trace_id']})")
            for entry in step.get("critical_path", []):
                lines.append(
                    f"      {entry['name']:<30} "
                    f"{entry['self_ms']:>8.3f} ms "
                    f"{entry['share'] * 100:>5.1f}%")
        sig = self.signature
        detail = f": {sig['exception']}" if sig.get("exception") else ""
        lines.append(f"  reproduces: {sig['kind']} "
                     f"[{sig['failure_kind']}] in {sig['app']}{detail}")
        return "\n".join(lines)


def _describe_event(captured: CapturedEvent) -> str:
    packet = getattr(captured.event, "packet", None)
    payload = getattr(packet, "payload", "") or ""
    name = captured.event.type_name
    return f"{name}({payload})" if payload else name


def _step_rows(minimal: List[CapturedEvent], result) -> List[dict]:
    """Per-step rows with critical-path attribution from the
    verification replay (replay trace ids line up with injection order
    because replay injects nothing else)."""
    from repro.telemetry.causal import analyze

    spans = result.telemetry.tracer.to_dicts() if result.telemetry else []
    replayed = result.capture.events if result.capture else []
    rows = []
    for i, captured in enumerate(minimal):
        top = []
        if i < len(replayed):
            analysis = analyze(spans, trace_ids=[replayed[i].trace_id])
            top = [
                {"name": name,
                 "self_ms": round(entry["total"] * 1000, 3),
                 "share": round(entry["fraction"], 4)}
                for name, entry in analysis.top(3)
            ]
        rows.append({
            "step": i,
            "dpid": captured.dpid,
            "event": _describe_event(captured),
            "trace_id": captured.trace_id,
            "critical_path": top,
        })
    return rows


def minimize_failure(recording: Recording,
                     harness: Optional[ReplayHarness] = None,
                     attach: bool = True) -> MinimizedRepro:
    """Shrink ``recording`` to its minimal causal sequence.

    Probes the causal-trace guess first, then ddmin over the full
    capture; verifies the final sequence with one more (captured)
    replay whose spans provide the per-step critical-path summary.
    With ``attach`` (the default) the result is written onto the
    recording's problem ticket as ``ticket.minimized``.
    """
    if not recording.signature.failed:
        raise MinimizationError("recording has no failure to minimize")
    harness = harness or recording.harness
    events = list(recording.events)
    prober = _Prober(harness, recording.signature)
    if not prober.test(events):
        raise MinimizationError(
            "full captured sequence did not reproduce the failure "
            f"({recording.signature.describe()}); the run is "
            "nondeterministic beyond the replay config")
    failing_trace = recording.ticket.trace_id if recording.ticket else 0
    causal = [e for e in events
              if failing_trace and e.trace_id == failing_trace]
    if causal and len(causal) < len(events) and prober.test(causal):
        minimal = ddmin(causal, prober.test)
    else:
        minimal = ddmin(events, prober.test)
    verification = harness.replay(minimal, capture=True)
    repro = MinimizedRepro(
        original_length=len(events),
        steps=_step_rows(minimal, verification),
        config=recording.config,
        signature=recording.signature.to_dict(),
        probes=prober.probes,
        minimal_events=minimal,
    )
    if attach and recording.ticket is not None:
        recording.ticket.minimized = repro.to_dict()
    return repro
