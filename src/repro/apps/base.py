"""SDN application base class.

Apps are event-driven: the runtime calls :meth:`SDNApp.handle` with
each event the app subscribed to; ``handle`` routes to per-type hooks
(``on_packet_in``, ``on_switch_leave``, ...).  Apps emit OpenFlow
messages through the :class:`~repro.controller.api.AppAPI` they receive
at startup -- never by touching the controller directly -- which is
what lets LegoSDN host them unmodified inside a stub.

The checkpoint contract: :meth:`get_state` returns everything mutable
as a picklable dict and :meth:`set_state` restores it.  The default
implementation snapshots ``__dict__`` (minus the API handle), which is
the Python analogue of CRIU checkpointing a whole process image.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.controller.api import Command

_CAMEL_RE = re.compile(r"(?<!^)(?=[A-Z])")


def _snake(name: str) -> str:
    return _CAMEL_RE.sub("_", name).lower()


class SDNApp:
    """Base class for every SDN application."""

    #: Default app name; instances may override via the constructor.
    name = "app"
    #: Event type names this app wants (e.g. ``("PacketIn", "PortStatus")``).
    subscriptions = ()

    #: Attributes excluded from checkpoints (runtime wiring, not state).
    _NON_STATE = frozenset({"api"})

    def __init__(self, name: Optional[str] = None):
        if name is not None:
            self.name = name
        self.api = None
        self.events_handled = 0

    # -- lifecycle ------------------------------------------------------

    def startup(self, api) -> None:
        """Called once by the runtime before any event is delivered."""
        self.api = api
        self.on_start()

    def on_start(self) -> None:
        """Hook for subclasses (proactive rule installation etc.)."""

    # -- event dispatch -----------------------------------------------------

    def handle(self, event) -> Optional[Command]:
        """Route ``event`` to its ``on_<type>`` hook.

        Returns the hook's :class:`Command` (``None`` means CONTINUE).
        Exceptions are deliberately NOT caught here: whether an app bug
        crashes the controller is the runtime's decision, and the whole
        point of the paper.
        """
        self.events_handled += 1
        handler = getattr(self, "on_" + _snake(event.type_name), None)
        if handler is None:
            return None
        return handler(event)

    # -- checkpoint contract ---------------------------------------------------

    def get_state(self) -> dict:
        """Everything needed to reconstruct this app's progress."""
        return {
            key: value
            for key, value in self.__dict__.items()
            if key not in self._NON_STATE
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        api = self.api
        self.__dict__.clear()
        self.__dict__.update(state)
        self.api = api

    @staticmethod
    def packet_out_for(event, actions) -> "PacketOut":
        """Build the PacketOut that answers a PacketIn.

        Prefers the switch-side buffer (``event.buffer_id``) so the
        packet body never rides the control channel again; falls back
        to inlining the packet when the switch did not buffer it.
        """
        from repro.openflow.messages import PacketOut

        buffer_id = getattr(event, "buffer_id", None)
        return PacketOut(
            packet=None if buffer_id is not None else event.packet,
            in_port=event.in_port,
            actions=tuple(actions),
            buffer_id=buffer_id,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, events={self.events_handled})"
