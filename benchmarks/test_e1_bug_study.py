"""E1: the FlowScale bug-study (§2.1).

"Upon examination of this bug-tracker, we discovered that 16% of the
reported bugs resulted in catastrophic exceptions."  And §1/§3.3:
"bugs in SDN-Apps are mostly deterministic."

This bench replays a synthetic bug corpus with the paper's measured
mix against the monolithic runtime (FlowScale ran on a stock
controller) and classifies each bug's observed outcome: controller
crash, invariant violation (byzantine), delayed crash (state
corruption), or nothing (benign).

Expected shape: exactly the planted 16% of bugs produce a catastrophic
outcome; benign bugs never do; >=80% of the corpus is deterministic.
"""

from repro.apps import LearningSwitch
from repro.faults import BugKind, FaultyApp, make_bug_corpus
from repro.invariants import InvariantChecker, NetSnapshot, build_host_probes
from repro.network.topology import linear_topology
from repro.workloads.traffic import inject_marker_packet

from benchmarks.harness import build_monolithic, print_table, run_once

CORPUS_SIZE = 50


def _outcome_for_bug(bug):
    """Run one bug to completion on a monolithic stack; classify."""
    net, runtime = build_monolithic(
        linear_topology(3, 1),
        # "flowscale" is the FaultyApp's identity; the inner behaviour
        # is a LearningSwitch so the bug's effect is isolated from any
        # traffic-engineering interplay.
        [lambda: FaultyApp(LearningSwitch(name="flowscale"), [bug])],
        warmup=1.0,  # discovery converges; no data traffic yet, so the
    )                # marker reliably misses every flow table
    inject_marker_packet(net, "h1", "h3", bug.payload_marker)
    net.run_for(1.0)
    crashed_first = net.controller.crashed
    snap = NetSnapshot.from_network(net)
    probes = build_host_probes(snap)
    checker = InvariantChecker(snap)
    violations = (checker.check_loops(probes)
                  + checker.check_blackholes(probes))
    # Second trigger: surfaces delayed crashes (state corruption) and
    # probes determinism.
    crashed_second = False
    if not crashed_first:
        inject_marker_packet(net, "h1", "h3", bug.payload_marker)
        net.run_for(1.0)
        crashed_second = net.controller.crashed
    return {
        "kind": bug.kind.value,
        "catastrophic": (crashed_first or crashed_second
                         or bool(violations)),
        "controller_crashed": crashed_first or crashed_second,
        "invariant_violation": bool(violations),
    }


def test_e1_bug_study(benchmark):
    def experiment():
        corpus = make_bug_corpus(n=CORPUS_SIZE, catastrophic_fraction=0.16,
                                 seed=7)
        return [(bug, _outcome_for_bug(bug)) for bug in corpus]

    outcomes = run_once(benchmark, experiment)
    observed = sum(1 for _, o in outcomes if o["catastrophic"])
    planted = sum(1 for b, _ in outcomes if b.is_catastrophic())
    by_kind = {}
    for bug, outcome in outcomes:
        row = by_kind.setdefault(bug.kind.value, [0, 0])
        row[0] += 1
        row[1] += 1 if outcome["catastrophic"] else 0
    print_table(
        f"E1: synthetic FlowScale bug corpus (n={CORPUS_SIZE})",
        ["bug kind", "count", "observed catastrophic"],
        [[kind, c, cat] for kind, (c, cat) in sorted(by_kind.items())],
    )
    det = sum(1 for b, _ in outcomes if b.deterministic)
    print(f"catastrophic: planted {planted}/{CORPUS_SIZE} "
          f"({planted / CORPUS_SIZE:.0%}), observed {observed} "
          f"-- paper reports 16%")
    print(f"deterministic bugs: {det}/{CORPUS_SIZE} -- paper argues 'mostly'")
    benchmark.extra_info["catastrophic_fraction"] = observed / CORPUS_SIZE

    assert planted == round(CORPUS_SIZE * 0.16)
    # Every planted catastrophic bug whose trigger fired deterministically
    # is observed; non-deterministic ones may skip a coin flip, so allow
    # a small gap -- but never more catastrophes than planted.
    assert planted * 0.7 <= observed <= planted
    # Benign bugs never produce catastrophe.
    assert all(not o["catastrophic"]
               for b, o in outcomes if b.kind == BugKind.BENIGN)
    # The corpus is mostly deterministic (the paper's argument for why
    # reboot/replay recovery fails).
    assert det / CORPUS_SIZE >= 0.8
