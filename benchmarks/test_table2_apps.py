"""Table 2 reproduction: survey of SDN applications.

The paper's Table 2 lists popular FloodLight apps (RouteFlow,
FlowScale, BigTap, Stratos) and their developers, making the point
that the ecosystem is "a la carte": third-party code runs inside the
controller.  This bench runs our analogue of every surveyed app on
both runtimes, injects a deterministic crash into each one in turn,
and records whether the platform survives.

Expected shape: every app runs on both runtimes (unmodified -- the
LegoSDN column is not a port); under the monolithic runtime EVERY
app's crash kills the controller; under LegoSDN NONE does.
"""

from repro.apps import APP_REGISTRY, TABLE2_SURVEY, make_app
from repro.faults import crash_on
from repro.network.topology import linear_topology
from repro.workloads.traffic import inject_marker_packet

from benchmarks.harness import (
    build_legosdn,
    build_monolithic,
    print_table,
    run_once,
)


def _app_kwargs(name):
    # the load balancer needs its switch/uplinks configured for a line
    return {"dpid": 2, "uplinks": (1, 2)} if name == "load_balancer" else {}


def _crashy(name):
    return crash_on(make_app(name, **_app_kwargs(name)),
                    event_type="PacketIn", payload_marker="BOOM")


def _survives_crash_monolithic(name):
    net, runtime = build_monolithic(
        linear_topology(3, 1), [lambda: _crashy(name)])
    inject_marker_packet(net, "h1", "h3", "BOOM")
    net.run_for(2.0)
    return not net.controller.crashed


def _survives_crash_legosdn(name):
    net, runtime = build_legosdn(linear_topology(3, 1), [_crashy(name)])
    inject_marker_packet(net, "h1", "h3", "BOOM")
    net.run_for(2.0)
    recovered = runtime.stats()[name]["recoveries"] >= \
        runtime.stats()[name]["crashes"] > 0 or \
        runtime.stats()[name]["crashes"] == 0
    return (not net.controller.crashed) and recovered


def test_table2_app_survey(benchmark):
    def experiment():
        results = {}
        for name, paper_app, developer, purpose in TABLE2_SURVEY:
            results[name] = {
                "paper_app": paper_app,
                "developer": developer,
                "purpose": purpose,
                "mono_survives": _survives_crash_monolithic(name),
                "lego_survives": _survives_crash_legosdn(name),
            }
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [r["paper_app"], r["developer"], r["purpose"], name,
         "survives" if r["mono_survives"] else "CRASHES",
         "survives" if r["lego_survives"] else "CRASHES"]
        for name, r in results.items()
    ]
    print_table(
        "Table 2: surveyed apps -- controller fate on app crash",
        ["paper app", "developer", "purpose", "our analogue",
         "monolithic", "legosdn"],
        rows,
    )
    benchmark.extra_info["results"] = {
        name: {k: v for k, v in r.items()} for name, r in results.items()
    }
    assert set(r[0] for r in TABLE2_SURVEY) == \
        {"routing", "load_balancer", "firewall", "monitor", "hub",
         "flooder", "learning_switch"}
    for name, r in results.items():
        # PacketIn-driven apps crash the monolithic controller; apps
        # that never see the marker (no PacketIn subscription) are
        # immune on both -- either way LegoSDN must never lose the
        # controller.
        assert r["lego_survives"], name
        subscribed = "PacketIn" in APP_REGISTRY[name].subscriptions
        if subscribed:
            assert not r["mono_survives"], name
