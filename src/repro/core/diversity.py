"""Software and data diversity (§3.4) and hot-standby clones (§5).

Two recovery-through-redundancy patterns the paper says LegoSDN
enables:

- :class:`NVersionApp` -- "have multiple teams develop identical
  versions of the same application ... the correct output for any
  given input can be chosen using a majority vote on the outputs from
  the different versions."
- :class:`HotStandbyApp` -- "LegoSDN can spawn a clone of an SDN-App,
  and let it run in parallel ... only process the responses from the
  SDN-App and ignore those from its clone.  This allows for an easy
  switch-over operation to the clone, when the primary fails."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.base import SDNApp
from repro.controller.api import AppAPI
from repro.openflow.serialization import encode_value


class _CapturingAPI(AppAPI):
    """An AppAPI that records emissions instead of sending them.

    Reads delegate to the real API so every version sees the same
    controller state; only the write path is intercepted.
    """

    def __init__(self, real_api: AppAPI):
        self.real = real_api
        self.captured: List[Tuple[int, object]] = []

    def reset(self) -> List[Tuple[int, object]]:
        captured, self.captured = self.captured, []
        return captured

    def now(self):
        return self.real.now()

    def emit(self, dpid, msg):
        self.captured.append((dpid, msg))

    def topology(self):
        return self.real.topology()

    def host_location(self, mac):
        return self.real.host_location(mac)

    def hosts(self):
        return self.real.hosts()

    def switches(self):
        return self.real.switches()

    def log(self, text):
        self.real.log(text)

    def counter_inc(self, name, delta=1):
        self.real.counter_inc(name, delta)


def _canonical_outputs(outputs: List[Tuple[int, object]]) -> bytes:
    """Order-preserving byte fingerprint of an output list.

    Two versions "agree" iff they emit the same messages to the same
    switches in the same order; xids are excluded (each version
    allocates its own)."""
    parts = []
    for dpid, msg in outputs:
        clone = type(msg)(**{
            f: getattr(msg, f)
            for f in msg.__dataclass_fields__
            if f != "xid"
        })
        clone.xid = 0
        parts.append((dpid, encode_value(clone)))
    return encode_value(parts)


class NVersionApp(SDNApp):
    """Run N implementations of the same app; emit the majority output.

    A buggy minority version is outvoted: its wrong output (or its
    crash) is masked, and the disagreement is recorded for operators.
    """

    def __init__(self, versions: List[SDNApp], name: Optional[str] = None,
                 quorum: Optional[int] = None):
        if len(versions) < 2:
            raise ValueError("n-version execution needs >= 2 versions")
        super().__init__(name or f"nversion-{versions[0].name}")
        self.subscriptions = tuple(sorted({
            sub for v in versions for sub in v.subscriptions
        }))
        self.versions = versions
        self.quorum = quorum or (len(versions) // 2 + 1)
        self.votes_taken = 0
        self.disagreements = 0
        self.version_crashes: Dict[str, int] = {}
        self._capture_apis: List[_CapturingAPI] = []

    def startup(self, api) -> None:
        self.api = api
        self._capture_apis = []
        for i, version in enumerate(self.versions):
            capture = _CapturingAPI(api)
            self._capture_apis.append(capture)
            version.name = f"{self.name}.v{i}"
            version.startup(capture)

    def handle(self, event):
        self.events_handled += 1
        ballots: Dict[bytes, List[int]] = {}
        outputs_by_version: List[Optional[List]] = []
        for i, (version, capture) in enumerate(
                zip(self.versions, self._capture_apis)):
            if event.type_name not in version.subscriptions:
                outputs_by_version.append(None)
                continue
            capture.reset()
            try:
                version.handle(event)
            except Exception:  # noqa: BLE001 - a crashed version is outvoted
                self.version_crashes[version.name] = (
                    self.version_crashes.get(version.name, 0) + 1
                )
                outputs_by_version.append(None)
                continue
            outputs = capture.reset()
            outputs_by_version.append(outputs)
            ballots.setdefault(_canonical_outputs(outputs), []).append(i)
        if not ballots:
            return None
        self.votes_taken += 1
        winner_key, winner_voters = max(
            ballots.items(), key=lambda item: (len(item[1]), -item[1][0])
        )
        if len(ballots) > 1:
            self.disagreements += 1
        if len(winner_voters) < self.quorum:
            # No quorum: emit nothing rather than something unvetted.
            self.api.log(f"{self.name}: no quorum on {event.type_name}")
            return None
        for dpid, msg in outputs_by_version[winner_voters[0]]:
            self.api.emit(dpid, msg)
        return None

    def get_state(self) -> dict:
        return {
            "events_handled": self.events_handled,
            "votes_taken": self.votes_taken,
            "disagreements": self.disagreements,
            "version_crashes": dict(self.version_crashes),
            "version_states": [v.get_state() for v in self.versions],
        }

    def set_state(self, state: dict) -> None:
        self.events_handled = state["events_handled"]
        self.votes_taken = state["votes_taken"]
        self.disagreements = state["disagreements"]
        self.version_crashes = dict(state["version_crashes"])
        for version, vstate in zip(self.versions, state["version_states"]):
            version.set_state(vstate)


class HotStandbyApp(SDNApp):
    """Primary + shadow clone; instant switch-over on primary failure.

    Both instances see every event; only the primary's output reaches
    the network.  When the primary crashes (on a presumably
    non-deterministic bug), the clone -- which survived the same event
    -- is promoted in place, with no checkpoint restore needed.
    """

    def __init__(self, primary: SDNApp, clone: SDNApp,
                 name: Optional[str] = None):
        super().__init__(name or f"standby-{primary.name}")
        self.subscriptions = tuple(sorted(
            set(primary.subscriptions) | set(clone.subscriptions)
        ))
        self.primary = primary
        self.clone = clone
        self.switch_overs = 0
        self.primary_dead = False
        self._primary_capture: Optional[_CapturingAPI] = None
        self._clone_capture: Optional[_CapturingAPI] = None

    def startup(self, api) -> None:
        self.api = api
        self._primary_capture = _CapturingAPI(api)
        self._clone_capture = _CapturingAPI(api)
        self.primary.startup(self._primary_capture)
        self.clone.startup(self._clone_capture)

    def handle(self, event):
        self.events_handled += 1
        # Feed the clone first (its output is discarded either way).
        clone_outputs: List = []
        clone_alive = True
        if event.type_name in self.clone.subscriptions:
            self._clone_capture.reset()
            try:
                self.clone.handle(event)
                clone_outputs = self._clone_capture.reset()
            except Exception:  # noqa: BLE001
                clone_alive = False
        if not self.primary_dead and event.type_name in self.primary.subscriptions:
            self._primary_capture.reset()
            try:
                self.primary.handle(event)
            except Exception:  # noqa: BLE001 - switch over to the clone
                self.primary_dead = True
                self.switch_overs += 1
                if clone_alive:
                    self.primary, self.clone = self.clone, self.primary
                    self._primary_capture, self._clone_capture = (
                        self._clone_capture, self._primary_capture)
                    self.primary_dead = False
                    for dpid, msg in clone_outputs:
                        self.api.emit(dpid, msg)
                return None
            for dpid, msg in self._primary_capture.reset():
                self.api.emit(dpid, msg)
            return None
        if self.primary_dead and clone_alive:
            # Primary already gone and no clone promotion possible --
            # deliver the clone's output as best effort.
            for dpid, msg in clone_outputs:
                self.api.emit(dpid, msg)
        return None

    def get_state(self) -> dict:
        return {
            "events_handled": self.events_handled,
            "switch_overs": self.switch_overs,
            "primary_dead": self.primary_dead,
            "primary_state": self.primary.get_state(),
            "clone_state": self.clone.get_state(),
        }

    def set_state(self, state: dict) -> None:
        self.events_handled = state["events_handled"]
        self.switch_overs = state["switch_overs"]
        self.primary_dead = state["primary_dead"]
        self.primary.set_state(state["primary_state"])
        self.clone.set_state(state["clone_state"])
