"""The Network facade: materialise a topology into a live simulation.

``Network`` builds the simulator, controller, switches, hosts, and
links from a :class:`~repro.network.topology.Topology`, wires the
control channels, and exposes the operations experiments need: run the
clock, fail links/switches, send pings, and measure reachability.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.host import Host
from repro.network.links import Link
from repro.network.simulator import Simulator
from repro.network.switch import Switch
from repro.network.topology import Topology


class Network:
    """A running SDN deployment: dataplane + controller."""

    def __init__(self, topology: Topology, seed: int = 0,
                 link_delay: float = 0.001, control_delay: float = 0.0005,
                 discovery_interval: float = 0.5,
                 flow_sweep_interval: float = 0.05,
                 buffer_packets: bool = True,
                 controller=None, telemetry=None):
        # Imported here, not at module top: repro.controller.services
        # imports the packet model from this package, so a module-level
        # import would be circular.
        from repro.controller.core import Controller

        topology.validate()
        self.topology = topology
        self.sim = Simulator(seed=seed)
        self.controller = controller or Controller(
            self.sim, control_delay=control_delay,
            discovery_interval=discovery_interval,
            telemetry=telemetry,
        )
        self.flow_sweep_interval = flow_sweep_interval
        self.switches: Dict[int, Switch] = {}
        self.hosts: Dict[str, Host] = {}
        self.links: List[Link] = []
        self._switch_links: Dict[Tuple[int, int], Link] = {}
        self._host_links: Dict[str, Link] = {}
        self._next_port: Dict[int, int] = {}
        self.buffer_packets = buffer_packets
        self._build(link_delay)
        self._started = False

    # -- construction ----------------------------------------------------

    def _build(self, link_delay: float) -> None:
        for dpid in self.topology.switches:
            self.switches[dpid] = Switch(dpid, self.sim,
                                         buffer_packets=self.buffer_packets)
            self._next_port[dpid] = 1
        for dpid_a, dpid_b in self.topology.switch_links:
            port_a = self._alloc_port(dpid_a)
            port_b = self._alloc_port(dpid_b)
            link = Link(self.sim, self.switches[dpid_a], port_a,
                        self.switches[dpid_b], port_b, delay=link_delay)
            self.switches[dpid_a].attach_link(port_a, link)
            self.switches[dpid_b].attach_link(port_b, link)
            self.links.append(link)
            self._switch_links[(min(dpid_a, dpid_b), max(dpid_a, dpid_b))] = link
        for spec in self.topology.hosts:
            host = Host(spec.name, spec.mac, spec.ip, self.sim)
            port = self._alloc_port(spec.dpid)
            link = Link(self.sim, self.switches[spec.dpid], port, host, 0,
                        delay=link_delay)
            self.switches[spec.dpid].attach_link(port, link)
            host.attach_link(link)
            self.hosts[spec.name] = host
            self.links.append(link)
            self._host_links[spec.name] = link

    def _alloc_port(self, dpid: int) -> int:
        port = self._next_port[dpid]
        self._next_port[dpid] = port + 1
        return port

    # -- lifecycle -----------------------------------------------------------

    def start(self, controller_for=None) -> None:
        """Connect switches to the controller and start services.

        ``controller_for`` (optional, ``dpid -> Controller``) wires each
        switch to a specific controller instead of ``self.controller``
        -- the seam a sharded deployment (:mod:`repro.shard`) uses to
        give every shard its own switch subset.  Every distinct
        controller returned is started exactly once.
        """
        if self._started:
            return
        self._started = True
        started = []
        for dpid in sorted(self.switches):
            controller = (controller_for(dpid) if controller_for is not None
                          else self.controller)
            controller.connect_switch(self.switches[dpid])
            if controller not in started:
                started.append(controller)
        for controller in started:
            controller.start()
        self.sim.every(self.flow_sweep_interval, self._sweep_flows)

    def _sweep_flows(self) -> None:
        for switch in self.switches.values():
            switch.sweep_flows()

    def run_for(self, duration: float) -> int:
        return self.sim.run_for(duration)

    def run_until(self, when: float) -> int:
        return self.sim.run_until(when)

    @property
    def now(self) -> float:
        return self.sim.now

    # -- lookups -----------------------------------------------------------------

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def switch(self, dpid: int) -> Switch:
        return self.switches[dpid]

    def host_list(self) -> List[Host]:
        return [self.hosts[spec.name] for spec in self.topology.hosts]

    def link_between(self, dpid_a: int, dpid_b: int) -> Link:
        key = (min(dpid_a, dpid_b), max(dpid_a, dpid_b))
        return self._switch_links[key]

    def host_link(self, name: str) -> Link:
        return self._host_links[name]

    # -- failures ------------------------------------------------------------------

    def link_down(self, dpid_a: int, dpid_b: int) -> None:
        """Fail the inter-switch link; both switches emit PortStatus."""
        self.link_between(dpid_a, dpid_b).set_up(False)

    def link_up(self, dpid_a: int, dpid_b: int) -> None:
        self.link_between(dpid_a, dpid_b).set_up(True)

    def switch_down(self, dpid: int) -> None:
        """Power off a switch: its links fail, its channel drops."""
        switch = self.switches[dpid]
        for port in sorted(switch.ports):
            switch.ports[port].set_up(False)
        switch.set_up(False)

    def switch_up(self, dpid: int) -> None:
        switch = self.switches[dpid]
        switch.set_up(True)
        for port in sorted(switch.ports):
            link = switch.ports[port]
            other, _ = link.other_end(switch)
            # Only raise links whose far end is also alive.
            if getattr(other, "up", True):
                link.set_up(True)

    # -- measurement -----------------------------------------------------------------

    def ping(self, src_name: str, dst_name: str, wait: float = 0.5) -> Optional[float]:
        """Ping ``dst`` from ``src``; return the RTT or None if lost."""
        src, dst = self.hosts[src_name], self.hosts[dst_name]
        seq = src.ping(dst)
        self.run_for(wait)
        return src.ping_rtts.get(seq)

    def reachability(self, pairs: Optional[List[Tuple[str, str]]] = None,
                     wait: float = 0.5) -> float:
        """Fraction of (src, dst) pings that complete round trips.

        Defaults to all ordered host pairs.  Pings are launched
        together and the simulation runs once for ``wait`` seconds, so
        the cost is one settle window regardless of pair count.
        """
        if pairs is None:
            names = [spec.name for spec in self.topology.hosts]
            pairs = [(a, b) for a in names for b in names if a != b]
        if not pairs:
            return 1.0
        launched = []
        for src_name, dst_name in pairs:
            src = self.hosts[src_name]
            seq = src.ping(self.hosts[dst_name])
            launched.append((src, seq))
        self.run_for(wait)
        ok = sum(1 for src, seq in launched if seq in src.ping_rtts)
        return ok / len(launched)

    def total_flow_entries(self) -> int:
        return sum(len(s.flow_table) for s in self.switches.values())

    def __repr__(self) -> str:
        return (f"Network({self.topology.name}: {len(self.switches)} switches, "
                f"{len(self.hosts)} hosts, {len(self.links)} links)")
