"""The write-ahead log of network-state-altering operations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.openflow.inversion import CounterRecord
from repro.openflow.messages import Message


@dataclass
class NetLogRecord:
    """One logged operation: the message, and what undoes it."""

    txn_id: int
    dpid: int
    message: Message
    inverse_messages: List[Message]
    counter_records: List[CounterRecord]
    applied_at: float

    @property
    def invertible(self) -> bool:
        return bool(self.inverse_messages) or not self.counter_records


@dataclass
class WriteAheadLog:
    """Append-only log, queryable per transaction.

    The log is the audit trail problem tickets reference ("the rules
    installed" -- §2.2) and the source of truth for rollback.
    """

    records: List[NetLogRecord] = field(default_factory=list)
    max_records: Optional[int] = 100_000
    #: Optional Telemetry; appends are counted and head-trims surface
    #: as trace events (a trim silently shortens the audit trail).
    telemetry: Optional[object] = field(default=None, repr=False,
                                        compare=False)

    def append(self, record: NetLogRecord) -> None:
        self.records.append(record)
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.metrics.inc("netlog.wal.appends")
        if self.max_records is not None and len(self.records) > self.max_records:
            # Trim the oldest committed prefix; aborts always touch the
            # tail, so trimming the head is safe.
            excess = len(self.records) - self.max_records
            del self.records[:excess]
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.tracer.event("netlog.wal.trim",
                                            dropped=excess)

    def for_transaction(self, txn_id: int) -> List[NetLogRecord]:
        return [r for r in self.records if r.txn_id == txn_id]

    def drop_transaction(self, txn_id: int) -> int:
        """Remove a rolled-back transaction's records; returns count."""
        before = len(self.records)
        self.records = [r for r in self.records if r.txn_id != txn_id]
        return before - len(self.records)

    def __len__(self) -> int:
        return len(self.records)
