"""The NetLog inversion algebra.

The paper's key insight (§3.2): *"each control message that modifies
network state is invertible: for every state altering control message,
A, there exists another control message, B, that undoes A's state
change."*  The inverse generally depends on the switch's state at the
moment A was applied (e.g. undoing a DELETE requires the deleted
entries), so :func:`invert` takes the *pre-state* -- the displaced or
removed entries that :meth:`FlowTable.apply_flow_mod` returns.

Undoing is imperfect: timeouts and counters are lost by a plain
re-add.  Following the paper, the inversion result therefore carries
:class:`CounterRecord` entries for NetLog's counter-cache, and re-adds
use the *remaining* hard timeout rather than the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.openflow.flowtable import FlowEntry
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand, Message


@dataclass(frozen=True)
class CounterRecord:
    """Preserved counter/timeout state for one restored flow entry.

    NetLog stores these in its counter-cache and patches statistics
    replies so that applications observe counters as if the
    delete/re-add round trip never happened (§3.2).
    """

    dpid: int
    match: Match
    priority: int
    packet_count: int
    byte_count: int
    original_installed_at: float
    idle_timeout: float
    hard_timeout: float


@dataclass
class InversionResult:
    """Inverse messages plus counter-cache records for one logged op."""

    messages: List[Message]
    counter_records: List[CounterRecord]


def invert(
    mod: FlowMod, pre_state: List[FlowEntry], dpid: int, now: float
) -> InversionResult:
    """Compute the inverse of ``mod`` given the displaced pre-state.

    ``pre_state`` is the list of entries that ``mod`` removed or
    overwrote, captured by :meth:`FlowTable.apply_flow_mod` at apply
    time.  Returns the messages that, applied in order, restore the
    flow table to its pre-``mod`` contents.
    """
    if not isinstance(mod, FlowMod):
        raise TypeError(f"only FlowMod messages are invertible, got {mod.type_name}")
    cmd = mod.command
    if cmd == FlowModCommand.ADD:
        return _invert_add(mod, pre_state, dpid, now)
    if cmd in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT):
        return _invert_modify(mod, pre_state, dpid, now)
    if cmd in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT):
        return _invert_delete(mod, pre_state, dpid, now)
    raise ValueError(f"unknown FlowMod command: {cmd!r}")


def _restore_flow_mod(entry: FlowEntry, now: float) -> FlowMod:
    """Build the ADD that reinstates ``entry`` with its remaining lifetime."""
    return FlowMod(
        match=entry.match,
        command=FlowModCommand.ADD,
        priority=entry.priority,
        actions=entry.actions,
        idle_timeout=entry.idle_timeout,
        hard_timeout=entry.remaining_hard_timeout(now),
        cookie=entry.cookie,
        send_flow_removed=entry.send_flow_removed,
    )


def _counter_record(entry: FlowEntry, dpid: int) -> CounterRecord:
    return CounterRecord(
        dpid=dpid,
        match=entry.match,
        priority=entry.priority,
        packet_count=entry.packet_count,
        byte_count=entry.byte_count,
        original_installed_at=entry.installed_at,
        idle_timeout=entry.idle_timeout,
        hard_timeout=entry.hard_timeout,
    )


def _invert_add(mod, pre_state, dpid, now) -> InversionResult:
    """ADD^-1 = strict delete of the added rule, then re-add whatever it displaced."""
    messages: List[Message] = [
        FlowMod(
            match=mod.match,
            command=FlowModCommand.DELETE_STRICT,
            priority=mod.priority,
        )
    ]
    records = []
    for entry in pre_state:
        messages.append(_restore_flow_mod(entry, now))
        records.append(_counter_record(entry, dpid))
    return InversionResult(messages, records)


def _invert_modify(mod, pre_state, dpid, now) -> InversionResult:
    """MODIFY^-1 = strict modify back to each entry's previous action list.

    A MODIFY that matched nothing behaved as an ADD (empty pre-state),
    so its inverse is the ADD inverse.
    """
    if not pre_state:
        return _invert_add(mod, [], dpid, now)
    messages = [
        FlowMod(
            match=entry.match,
            command=FlowModCommand.MODIFY_STRICT,
            priority=entry.priority,
            actions=entry.actions,
            cookie=entry.cookie,
        )
        for entry in pre_state
    ]
    return InversionResult(messages, [])


def _invert_delete(mod, pre_state, dpid, now) -> InversionResult:
    """DELETE^-1 = re-add every removed entry (remaining timeouts, cached counters)."""
    messages = [_restore_flow_mod(entry, now) for entry in pre_state]
    records = [_counter_record(entry, dpid) for entry in pre_state]
    return InversionResult(messages, records)
