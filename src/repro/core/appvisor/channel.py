"""The simulated UDP channel between proxy and stub.

"The proxy and stub communicate with each other using UDP."  (§4.1)

Datagrams are serialised frames; delivery takes ``base_delay`` plus a
per-byte transmission cost (this is where the paper's §3.1 caveat --
"serialization and de-serialization of messages, and the communication
protocol overhead introduce additional latency into the control-loop"
-- becomes measurable: the E2 experiment reads these costs straight
off the channel).  UDP is unreliable, so a ``loss`` probability can be
configured; heartbeats tolerate loss, and lost event traffic surfaces
as an event-timeout in the failure detector.

With ``batch=True`` the channel coalesces every frame a side sends at
the same sim instant into one :class:`~repro.core.appvisor.rpc.FrameBatch`
datagram, flushed on the tick boundary (``batch_window`` past the first
send).  One ``base_delay`` and one loss roll per batch instead of per
frame; delivery unpacks in order, so FIFO per direction is preserved
exactly.  Direct constructions default to unbatched -- the runtime and
the replication layer opt in.

With ``reliable=True`` the channel adds a TCP-like reliability layer
on top of the datagrams: per-side sequence numbers
(:class:`~repro.core.appvisor.rpc.SeqEnvelope`), cumulative acks,
retransmission with exponential backoff + seeded jitter under a
``retry_budget``, receiver-side dedup, and an in-order reorder buffer
-- so loss, duplication, reordering, and corruption (CRC-checked)
degrade into latency instead of lost or doubled frames: every frame is
delivered to the handler exactly once, in send order.  A datagram that
exhausts its retry budget is *abandoned*: the sender advances its
``floor`` past the gap (receivers stop waiting for it) and raises a
:class:`ChannelFault` through ``on_fault`` -- the signal the crashpad
FailureDetector uses to tell "channel lossy" apart from "app dead".

Chaos injection composes underneath either mode: assign a
:class:`~repro.faults.netfaults.ChaosProfile` to ``channel.chaos`` and
every datagram put on the wire is subject to its seeded burst loss,
duplication, reordering, delay jitter, payload corruption, and timed
partitions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.appvisor.rpc import (
    ChannelAck,
    FrameBatch,
    SeqEnvelope,
    ack_for,
    ack_intact,
    decode_frame,
    encode_frame,
    envelope_for,
    envelope_intact,
    frame_trace_ids,
)
from repro.openflow.serialization import SerializationError


@dataclass(frozen=True)
class ChannelFault:
    """A reliability failure on one direction of a channel.

    Raised through ``UdpChannel.on_fault`` when a datagram exhausts its
    retry budget -- the channel itself (not the process behind it) is
    the thing misbehaving.  ``seq`` is the highest abandoned sequence
    number; everything at or below it that was still unacked has been
    given up on.
    """

    side: str
    seq: int
    attempts: int
    at: float


@dataclass
class _Unacked:
    """One reliable datagram awaiting acknowledgement."""

    payload: bytes
    frames: int
    attempts: int = 0
    next_at: float = 0.0
    #: Trace ids of the events whose frames this datagram carries --
    #: captured at first transmit so retransmission spans attach to the
    #: causing event's tree instead of minting fresh identities.
    trace_ids: tuple = ()
    #: Frame type names aboard (for retransmit-span attribution;
    #: control frames like Register carry no trace context by design).
    kinds: tuple = ()
    #: When the datagram last went on the wire; a retransmit span
    #: covers [last_sent_at, now] -- the backoff the event waited out.
    last_sent_at: float = 0.0


@dataclass
class _SendState:
    """Per-direction sender half of the reliability layer."""

    next_seq: int = 0
    #: Lowest seq this sender still guarantees (1 + highest abandoned).
    floor: int = 1
    unacked: Dict[int, _Unacked] = field(default_factory=dict)
    timer_id: Optional[int] = None


@dataclass
class _RecvState:
    """Per-direction receiver half: cursor + reorder buffer."""

    #: Highest seq delivered (or skipped under an advanced floor).
    cursor: int = 0
    #: Out-of-order datagrams held until the gap below them fills:
    #: seq -> (payload bytes, frame count, sent_at, wire bytes).
    buffer: Dict[int, tuple] = field(default_factory=dict)


class ChannelEndpoint:
    """One side of the channel: send frames, receive via a handler."""

    def __init__(self, channel: "UdpChannel", side: str):
        self._channel = channel
        self._side = side
        self.handler: Optional[Callable] = None
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_recv = 0
        self.bytes_recv = 0

    @property
    def channel(self) -> "UdpChannel":
        """The channel this endpoint is one side of (for byte_stats)."""
        return self._channel

    def on_frame(self, handler: Callable) -> None:
        """Install the receive handler for this endpoint."""
        self.handler = handler

    def send(self, frame) -> None:
        """Serialise and transmit ``frame`` to the peer endpoint.

        There is deliberately no return value: on a reliable channel a
        send either arrives exactly once or surfaces as a
        :class:`ChannelFault`; on a plain channel a loss is logged as a
        ``channel.loss`` flight-recorder event.  (The old boolean was
        ignored by every call site -- silent loss by API design.)
        """
        self.frames_sent += 1
        if self._channel.batch:
            self._channel._enqueue(self._side, frame)
            return
        data = encode_frame(frame)
        self.bytes_sent += len(data)
        self._channel._note_sent(len(data))
        self._channel._transmit(self._side, data, frames=1,
                                trace_ids=self._channel._trace_ids_of(frame),
                                kinds=self._channel._frame_kinds_of(frame))

    def drop_pending(self) -> int:
        """Discard this side's unflushed frames (its process died)."""
        return self._channel.drop_pending(self._side)


class UdpChannel:
    """A bidirectional, lossy, delayed datagram channel."""

    def __init__(self, sim, base_delay: float = 0.0002,
                 per_byte_delay: float = 2e-8, loss: float = 0.0,
                 seed: int = 0,
                 batch: bool = False, batch_window: float = 0.0,
                 reliable: bool = False,
                 retry_budget: int = 8,
                 rto_initial: float = 0.01,
                 rto_max: float = 0.08,
                 rto_jitter: float = 0.25,
                 chaos=None,
                 telemetry=None, span_name: str = "appvisor.rpc"):
        self.sim = sim
        self.base_delay = base_delay
        self.per_byte_delay = per_byte_delay
        self.loss = loss
        self.rng = random.Random(seed)
        self.batch = batch
        #: How long the first pending frame waits for company.  0.0
        #: still batches: the flush is scheduled as a fresh sim event,
        #: which fires after every same-instant send already queued.
        self.batch_window = batch_window
        #: Reliable-delivery layer (seq/ack/retransmit/dedup/reorder).
        self.reliable = reliable
        #: Retransmissions allowed per datagram before it is abandoned
        #: and a ChannelFault raised.
        self.retry_budget = retry_budget
        self.rto_initial = rto_initial
        self.rto_max = rto_max
        #: Jitter fraction: each backoff is stretched by a seeded
        #: uniform draw in [0, rto_jitter] to de-synchronise retries.
        self.rto_jitter = rto_jitter
        #: Optional ChaosProfile perturbing every datagram on the wire.
        self.chaos = chaos
        #: Callbacks invoked with a ChannelFault when a datagram
        #: exhausts its retry budget (reliable mode only).
        self.on_fault: List[Callable[[ChannelFault], None]] = []
        #: Optional Telemetry; when enabled each delivered datagram
        #: records one ``span_name`` span covering its time on the wire
        #: (tagged with frame and byte counts), the span-diff harness's
        #: RPC segment.
        self.telemetry = telemetry
        self.span_name = span_name
        self.proxy_end = ChannelEndpoint(self, "proxy")
        self.stub_end = ChannelEndpoint(self, "stub")
        self.datagrams_delivered = 0
        self.datagrams_lost = 0
        self.bytes_carried = 0
        self.batches_flushed = 0
        self.frames_batched = 0
        # Reliability counters (all zero when reliable=False).
        self.retransmits = 0
        self.dup_datagrams_dropped = 0
        self.corrupt_rejected = 0
        self.acks_sent = 0
        self.abandoned = 0
        self.faults_raised = 0
        # Per-direction transmit serialisation: the sender's interface
        # puts one datagram on the wire at a time, so a burst of sends
        # drains at per_byte_delay line rate and ordering is inherent
        # (a small datagram can never overtake a big one).
        self._tx_free_at = {"proxy": 0.0, "stub": 0.0}
        self._pending: dict = {"proxy": [], "stub": []}
        self._flush_scheduled = {"proxy": False, "stub": False}
        self._send_state = {"proxy": _SendState(), "stub": _SendState()}
        self._recv_state = {"proxy": _RecvState(), "stub": _RecvState()}

    def delay_for(self, nbytes: int) -> float:
        """One-way latency for an ``nbytes`` datagram on an idle link."""
        return self.base_delay + nbytes * self.per_byte_delay

    def _endpoint(self, side: str) -> ChannelEndpoint:
        return self.proxy_end if side == "proxy" else self.stub_end

    # -- batching ---------------------------------------------------------

    def _enqueue(self, from_side: str, frame) -> None:
        self._pending[from_side].append(frame)
        if not self._flush_scheduled[from_side]:
            self._flush_scheduled[from_side] = True
            self.sim.schedule(self.batch_window,
                              lambda: self._flush(from_side))

    def _flush(self, from_side: str) -> None:
        """Ship the side's pending frames as one datagram."""
        self._flush_scheduled[from_side] = False
        pending: List = self._pending[from_side]
        if not pending:
            return
        self._pending[from_side] = []
        if len(pending) == 1:
            frame = pending[0]
        else:
            frame = FrameBatch(frames=tuple(pending))
        data = encode_frame(frame)
        self._endpoint(from_side).bytes_sent += len(data)
        self._note_sent(len(data))
        self.batches_flushed += 1
        self.frames_batched += len(pending)
        self._transmit(from_side, data, frames=len(pending),
                       trace_ids=self._trace_ids_of(frame),
                       kinds=self._frame_kinds_of(frame))

    def drop_pending(self, side: str) -> int:
        """Discard a side's unflushed frames (its process just died).

        Returns how many frames were dropped.  A crash between sends
        and the tick-boundary flush loses exactly the unflushed tail --
        everything already flushed is on the wire and still arrives.
        A dead process retransmits nothing either: the side's unacked
        buffer is cleared and its retry timer cancelled.
        """
        dropped = len(self._pending[side])
        self._pending[side] = []
        state = self._send_state[side]
        state.unacked.clear()
        if state.timer_id is not None:
            self.sim.cancel(state.timer_id)
            state.timer_id = None
        return dropped

    def pending_frames(self, side: str) -> int:
        return len(self._pending[side])

    # -- the wire ---------------------------------------------------------

    def _trace_ids_of(self, frame) -> tuple:
        """Trace ids a datagram will carry, when anyone is looking.

        Computed only with telemetry on (the ids feed retransmission
        and delivery spans), so the disabled hot path stays unchanged.
        """
        if self.telemetry is not None and self.telemetry.enabled:
            return frame_trace_ids(frame)
        return ()

    def _frame_kinds_of(self, frame) -> tuple:
        """Distinct frame type names a datagram carries (telemetry on)."""
        if self.telemetry is not None and self.telemetry.enabled:
            if isinstance(frame, FrameBatch):
                return tuple(sorted({type(f).__name__
                                     for f in frame.frames}))
            return (type(frame).__name__,)
        return ()

    def _transmit(self, from_side: str, data: bytes, frames: int = 1,
                  trace_ids: tuple = (), kinds: tuple = ()) -> None:
        if not self.reliable:
            self._put_on_wire(from_side, data, frames, kind="data")
            return
        state = self._send_state[from_side]
        state.next_seq += 1
        seq = state.next_seq
        state.unacked[seq] = _Unacked(payload=data, frames=frames,
                                      trace_ids=trace_ids, kinds=kinds)
        self._send_seq(from_side, seq)

    def _send_seq(self, from_side: str, seq: int) -> None:
        """(Re)transmit one reliable datagram and arm its backoff."""
        state = self._send_state[from_side]
        record = state.unacked.get(seq)
        if record is None:
            return
        record.attempts += 1
        record.last_sent_at = self.sim.now
        env = envelope_for(seq, state.floor, record.payload)
        self._put_on_wire(from_side, encode_frame(env), record.frames,
                          kind="data")
        rto = min(self.rto_initial * (2 ** (record.attempts - 1)),
                  self.rto_max)
        if self.rto_jitter > 0:
            rto *= 1.0 + self.rng.random() * self.rto_jitter
        record.next_at = self.sim.now + rto
        self._arm_timer(from_side)

    def _arm_timer(self, from_side: str) -> None:
        state = self._send_state[from_side]
        if not state.unacked:
            return
        due = min(rec.next_at for rec in state.unacked.values())
        if state.timer_id is not None:
            self.sim.cancel(state.timer_id)
        state.timer_id = self.sim.schedule_at(
            due, self._retx_tick, from_side)

    def _retx_tick(self, from_side: str) -> None:
        """Retransmit every overdue datagram; abandon exhausted ones."""
        state = self._send_state[from_side]
        state.timer_id = None
        now = self.sim.now
        exhausted = []
        for seq in sorted(state.unacked):
            record = state.unacked[seq]
            if record.next_at > now + 1e-12:
                continue
            if record.attempts > self.retry_budget:
                exhausted.append(seq)
                continue
            self.retransmits += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.metrics.inc("channel.retransmits")
                # The backoff this datagram just waited out, attributed
                # to the event whose frames it carries.  Retransmission
                # is pure added latency on the causal path, which is
                # exactly what the critical-path analyzer should see.
                tids = record.trace_ids
                self.telemetry.tracer.record_span(
                    f"{self.span_name}.retransmit",
                    start=record.last_sent_at,
                    trace_id=tids[0] if tids else None,
                    direction=from_side, seq=seq,
                    attempt=record.attempts,
                    frames=",".join(record.kinds))
            self._send_seq(from_side, seq)
        if exhausted:
            self._abandon(from_side, exhausted)
        self._arm_timer(from_side)

    def _abandon(self, from_side: str, seqs: List[int]) -> None:
        """Give up on datagrams that exhausted the retry budget.

        Everything at or below the highest exhausted seq is hopeless
        (the receiver delivers in order, so it cannot use seqs above a
        permanent gap until the floor passes it): drop them all,
        advance the floor, and surface one ChannelFault.
        """
        state = self._send_state[from_side]
        top = max(seqs)
        attempts = state.unacked[top].attempts
        for seq in [s for s in state.unacked if s <= top]:
            del state.unacked[seq]
            self.abandoned += 1
        state.floor = max(state.floor, top + 1)
        self.faults_raised += 1
        fault = ChannelFault(side=from_side, seq=top,
                             attempts=attempts, at=self.sim.now)
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.metrics.inc("channel.faults")
            self.telemetry.tracer.event(
                "channel.fault", direction=from_side, seq=top,
                attempts=attempts)
        for callback in list(self.on_fault):
            callback(fault)

    def _note_sent(self, nbytes: int) -> None:
        """Account payload bytes a side handed to the wire (pre-loss,
        pre-envelope: the application-level send volume that the
        ``bytes/event`` derived metric divides by events)."""
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.metrics.inc("channel.bytes_sent", nbytes)

    def _note_loss(self, from_side: str, kind: str) -> None:
        """A datagram died on the wire: count it, leave a trace.

        In reliable mode the retry layer recovers; in plain mode this
        flight-recorder event is the only record a loss leaves (the
        old silent ``return False`` told nobody).
        """
        self.datagrams_lost += 1
        if (kind == "data" and self.telemetry is not None
                and self.telemetry.enabled):
            self.telemetry.metrics.inc("channel.datagrams_lost")
            if not self.reliable:
                self.telemetry.tracer.event(
                    "channel.loss", direction=from_side)

    def _put_on_wire(self, from_side: str, data: bytes, frames: int,
                     kind: str) -> None:
        """Charge transmission and schedule delivery of one datagram.

        The chaos hook runs here -- after the sender's NIC, before the
        receiver -- so its drops/dups/delays model the network itself,
        identically for plain datagrams, reliable envelopes, and acks.
        """
        if self.loss > 0 and self.rng.random() < self.loss:
            self._note_loss(from_side, kind)
            return
        deliveries = None
        if self.chaos is not None:
            deliveries = self.chaos.perturb(self.sim.now, from_side, data)
            if not deliveries:
                self._note_loss(from_side, kind)
                return
        self.bytes_carried += len(data)
        tx_start = max(self.sim.now, self._tx_free_at[from_side])
        tx_end = tx_start + len(data) * self.per_byte_delay
        self._tx_free_at[from_side] = tx_end
        sent_at = self.sim.now
        if deliveries is None:
            deliveries = ((0.0, data),)
        for extra_delay, payload in deliveries:
            self.sim.schedule_at(tx_end + self.base_delay + extra_delay,
                                 self._deliver, from_side, payload,
                                 frames, kind, sent_at)

    # -- receive path -----------------------------------------------------

    def _deliver(self, from_side: str, data: bytes, frames: int,
                 kind: str, sent_at: float) -> None:
        dest_side = "stub" if from_side == "proxy" else "proxy"
        try:
            frame = decode_frame(data)
        except Exception:
            # Corruption can break any layer of the codec (framing,
            # type tags, struct unpacks); every parse failure is one
            # rejected datagram, never a crash in the receive path.
            self._note_corrupt(dest_side)
            return
        if self.reliable and isinstance(frame, ChannelAck):
            if not ack_intact(frame):
                # A flipped ``cumulative`` would falsely acknowledge
                # data the receiver never saw; the next genuine ack
                # covers whatever this one carried.
                self._note_corrupt(dest_side)
                return
            self._handle_ack(dest_side, frame)
            return
        if self.reliable and isinstance(frame, SeqEnvelope):
            self._handle_envelope(dest_side, frame, sent_at)
            return
        if self.reliable and kind == "data":
            # A reliable peer only ever puts envelopes on the wire; a
            # decodable-but-wrong type means corruption rewrote the
            # frame tag.  Dropping it lets retransmission heal.
            self._note_corrupt(dest_side)
            return
        # Plain (unreliable) datagram: deliver as-is.
        self._count_delivery(from_side, frames, len(data), sent_at,
                             frame=frame)
        self._dispatch(dest_side, frame)

    def _note_corrupt(self, dest_side: str) -> None:
        self.corrupt_rejected += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.metrics.inc("channel.corrupt_rejected")

    def _count_delivery(self, from_side: str, frames: int, nbytes: int,
                        sent_at: float, frame=None) -> None:
        self.datagrams_delivered += 1
        dest = self._endpoint("stub" if from_side == "proxy" else "proxy")
        dest.frames_recv += frames
        dest.bytes_recv += nbytes
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.metrics.inc("channel.bytes_recv", nbytes)
            tids = frame_trace_ids(frame) if frame is not None else ()
            self.telemetry.tracer.record_span(
                self.span_name, start=sent_at,
                trace_id=tids[0] if tids else None,
                direction=from_side, frames=frames, nbytes=nbytes)

    def _dispatch(self, dest_side: str, frame) -> None:
        dest = self._endpoint(dest_side)
        if dest.handler is None:
            return
        if isinstance(frame, FrameBatch):
            for inner in frame.frames:
                if dest.handler is None:
                    break  # receiver detached mid-batch
                dest.handler(inner)
        else:
            dest.handler(frame)

    # -- reliability: receiver side ---------------------------------------

    def _handle_envelope(self, dest_side: str, env: SeqEnvelope,
                         sent_at: float) -> None:
        from_side = "proxy" if dest_side == "stub" else "stub"
        if not envelope_intact(env):
            # Bit-flipped payload: reject, send no ack -- the sender's
            # retransmission delivers a clean copy.
            self._note_corrupt(dest_side)
            return
        recv = self._recv_state[dest_side]
        if env.seq <= recv.cursor or env.seq in recv.buffer:
            # Duplicate (network dup, or a retransmit racing the ack).
            self.dup_datagrams_dropped += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.metrics.inc("channel.dups_dropped")
            self._send_ack(dest_side)
            return
        recv.buffer[env.seq] = (env.payload, sent_at)
        # The sender's floor may have moved past datagrams it abandoned:
        # stop waiting for them so in-order delivery cannot wedge.
        self._drain(dest_side, from_side, floor=env.floor)
        self._send_ack(dest_side)

    def _drain(self, dest_side: str, from_side: str, floor: int) -> None:
        recv = self._recv_state[dest_side]
        while True:
            nxt = recv.cursor + 1
            if nxt in recv.buffer:
                payload, sent_at = recv.buffer.pop(nxt)
                recv.cursor = nxt
                try:
                    frame = decode_frame(payload)
                except SerializationError:
                    self._note_corrupt(dest_side)
                    continue
                self._count_delivery(from_side, self._frames_in(frame),
                                     len(payload), sent_at, frame=frame)
                self._dispatch(dest_side, frame)
            elif nxt < floor:
                # Abandoned by the sender: skip the gap.
                recv.cursor = nxt
            else:
                break

    @staticmethod
    def _frames_in(frame) -> int:
        return len(frame.frames) if isinstance(frame, FrameBatch) else 1

    def _send_ack(self, dest_side: str) -> None:
        recv = self._recv_state[dest_side]
        self.acks_sent += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.metrics.inc("channel.acks_sent")
        data = encode_frame(ack_for(recv.cursor))
        self._put_on_wire(dest_side, data, frames=0, kind="ack")

    # -- reliability: sender side -----------------------------------------

    def _handle_ack(self, sender_side: str, ack: ChannelAck) -> None:
        state = self._send_state[sender_side]
        acked = [s for s in state.unacked if s <= ack.cumulative]
        for seq in acked:
            del state.unacked[seq]
        if not state.unacked and state.timer_id is not None:
            self.sim.cancel(state.timer_id)
            state.timer_id = None

    # -- introspection -----------------------------------------------------

    def unacked_count(self, side: str) -> int:
        """Datagrams this side has sent but not yet had acknowledged."""
        return len(self._send_state[side].unacked)

    def byte_stats(self) -> Dict[str, int]:
        """Per-endpoint wire volume (payload bytes, both directions)."""
        return {
            "proxy_bytes_sent": self.proxy_end.bytes_sent,
            "proxy_bytes_recv": self.proxy_end.bytes_recv,
            "stub_bytes_sent": self.stub_end.bytes_sent,
            "stub_bytes_recv": self.stub_end.bytes_recv,
            "bytes_carried": self.bytes_carried,
        }

    def reliability_stats(self) -> Dict[str, int]:
        return {
            "retransmits": self.retransmits,
            "dup_datagrams_dropped": self.dup_datagrams_dropped,
            "corrupt_rejected": self.corrupt_rejected,
            "acks_sent": self.acks_sent,
            "abandoned": self.abandoned,
            "faults_raised": self.faults_raised,
        }
