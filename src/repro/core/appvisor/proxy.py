"""The AppVisor proxy: the controller-side half of the isolation layer.

"The former [proxy] runs as an SDN-App in the controller ... The proxy
dispatches the messages it receives from the controller to the stub,
which in turn delivers it to the SDN-App. ... The proxy in turn
registers itself for these message types with the controller and
maintains the per-application subscriptions in a table." (§4.1)

The proxy is also where LegoSDN's other two abstractions plug in:

- every event an app handles becomes a **NetLog transaction** (eager
  apply + rollback in ``netlog`` mode, or the §4.1 delay-buffer in
  ``buffer`` mode);
- detected failures are routed to **Crash-Pad**, which decides the
  compromise policy; the proxy executes it (restore, skip, or
  transform-and-redeliver).

The proxy's controller listener never lets an exception escape, which
severs the app->controller fate-sharing relationship by construction.
"""

from __future__ import annotations

import enum
import itertools
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.controller.api import Command
from repro.controller.events import AppCrashed
from repro.core.appvisor import rpc
from repro.core.crashpad.detector import FailureDetector
from repro.core.crashpad.recovery import CrashPad
from repro.core.netlog.buffer import DelayBuffer
from repro.core.netlog.transaction import Transaction, TransactionManager
from repro.openflow.messages import FlowRemoved, FlowStatsReply


def _violation_key(violation):
    """Stable identity for differential attribution: the invariant kind
    plus the affected probe pair (detail strings carry path listings
    that can shift when unrelated rules change)."""
    if violation.probe is not None:
        return (violation.kind, violation.probe.pair)
    return (violation.kind, violation.detail)


class AppStatus(enum.Enum):
    UP = "up"
    RECOVERING = "recovering"
    DEAD = "dead"  # No-Compromise verdict or unrecoverable restore


@dataclass
class Inflight:
    """The event an app is processing right now."""

    seq: int
    event: object
    txn: Optional[Transaction]
    dispatched_at: float
    #: Causal identity minted at controller ingestion; echoed on every
    #: frame the event produces (0 = untraced).
    trace_id: int = 0


@dataclass
class AppRecord:
    """Everything the proxy tracks per hosted app."""

    name: str
    subscriptions: frozenset
    endpoint: object
    status: AppStatus = AppStatus.UP
    queue: Deque = field(default_factory=deque)
    #: In-flight events keyed by lane.  Serial mode uses one constant
    #: lane; §5 concurrency lanes key by originating switch, letting
    #: events from different switches overlap in the pipeline while
    #: each lane stays FIFO.
    inflights: Dict[object, Inflight] = field(default_factory=dict)
    last_seq: int = 0
    crash_count: int = 0
    recoveries: int = 0
    events_dispatched: int = 0
    events_completed: int = 0
    events_skipped: int = 0
    events_transformed: int = 0
    byzantine_count: int = 0
    deep_restores: int = 0
    supports_deep_restore: bool = False
    crash_times: List[float] = field(default_factory=list)
    #: Suspicions the detector attributed to a lossy channel rather
    #: than the app -- silence Crash-Pad deliberately did NOT treat as
    #: a crash (no restore of a healthy app over a bad link).
    channel_suspicions: int = 0
    #: When the current recovery began (failure detection time), for
    #: the crashpad.recovery telemetry span.
    recovery_started_at: float = 0.0
    #: Trace id of the failure that triggered the current recovery, so
    #: the crashpad.recovery span (recorded split-phase at the
    #: RestoreAck) attaches to the offending event's causal tree.
    recovery_trace_id: int = 0
    pushed_topo_version: int = -1
    pushed_device_version: int = -1


class ProxyShutdown(RuntimeError):
    """Raised into the controller when a critical "No-Compromise"
    invariant is violated and the operator chose shutdown (§5)."""


class AppVisorProxy:
    """The subscription table, dispatcher, and failure-handling driver."""

    LISTENER_NAME = "appvisor-proxy"
    #: Types the proxy always wants, for shadow-table upkeep and
    #: counter-cache patching, regardless of app subscriptions.
    INTERNAL_TYPES = frozenset({"FlowRemoved", "SwitchLeave", "FlowStatsReply"})

    def __init__(self, controller, mode: str = "netlog",
                 crashpad: Optional[CrashPad] = None,
                 detector: Optional[FailureDetector] = None,
                 check_interval: float = 0.05,
                 byzantine_check: bool = False,
                 shutdown_on_critical: bool = False,
                 parallel_lanes: bool = False):
        if mode not in ("netlog", "buffer"):
            raise ValueError(f"mode must be 'netlog' or 'buffer', not {mode!r}")
        self.parallel_lanes = parallel_lanes
        self.controller = controller
        self.sim = controller.sim
        self.telemetry = controller.telemetry
        self.mode = mode
        self.manager = TransactionManager(controller)
        self.buffer = DelayBuffer(self.manager)
        self.crashpad = crashpad or CrashPad()
        self.detector = detector or FailureDetector()
        # The proxy is the composition point: the decision engine and
        # the detector observe through the deployment's telemetry.
        self.crashpad.telemetry = self.telemetry
        self.detector.telemetry = self.telemetry
        self.byzantine_check = byzantine_check
        self.shutdown_on_critical = shutdown_on_critical
        self.apps: Dict[str, AppRecord] = {}
        self.internal_errors: List[str] = []
        self._listener_registered = False
        self._register_listener()
        self._stop_tick = self.sim.every(check_interval, self._tick)

    # -- controller listener ------------------------------------------------

    def _register_listener(self) -> None:
        types = set(self.INTERNAL_TYPES)
        for record in self.apps.values():
            types.update(record.subscriptions)
        if self._listener_registered:
            self.controller.unregister_listener(self.LISTENER_NAME)
        self.controller.register_listener(
            self.LISTENER_NAME, types, self.controller_event
        )
        self._listener_registered = True

    def controller_event(self, event) -> Command:
        """The proxy's listener: fan events out to subscribed stubs.

        Wrapped so that *nothing* -- not even a proxy bug -- propagates
        into the controller's dispatch loop.
        """
        try:
            self._handle_controller_event(event)
        except Exception:  # noqa: BLE001 - the proxy must never kill the host
            self.internal_errors.append(traceback.format_exc())
        return Command.CONTINUE

    def _handle_controller_event(self, event) -> None:
        type_name = event.type_name
        # Shadow-table upkeep.
        if isinstance(event, FlowRemoved):
            self.manager.note_flow_removed(event.dpid, event.match, event.priority)
        elif type_name == "SwitchLeave":
            self.manager.note_switch_reset(event.dpid)
        # Counter-cache patching: apps observe corrected statistics.
        if isinstance(event, FlowStatsReply):
            # Raw counters first: the shadow reconciles against what the
            # switch actually reported, not the cache-corrected view.
            self.manager.note_flow_stats(event)
            event = self.manager.counter_cache.patch_flow_stats(event)
        # The controller's dispatch span is open right now: its trace
        # id travels with the queued event (dispatch may happen later,
        # from a different call frame, when the lane frees up).
        tracer = self.telemetry.tracer
        trace_id = (tracer.current_trace or 0) if tracer.enabled else 0
        for record in self.apps.values():
            if type_name not in record.subscriptions:
                continue
            if record.status is AppStatus.DEAD:
                continue
            record.queue.append((event, trace_id))
            self._pump(record)

    # -- stub attachment --------------------------------------------------------

    def attach_stub(self, stub, channel) -> None:
        """Wire a stub's channel into the proxy and start the stub."""
        endpoint = channel.proxy_end
        endpoint.on_frame(lambda frame: self.on_frame(endpoint, frame))
        stub.connect(channel.stub_end)

    def adopt_stub(self, stub, channel) -> None:
        """Take over an already-running stub (controller failover).

        Unlike :meth:`attach_stub`, the app is not started again: the
        stub keeps its state, checkpoints, and journal, re-registers
        with this proxy, and resumes seq numbering where it stopped.
        """
        endpoint = channel.proxy_end
        endpoint.on_frame(lambda frame: self.on_frame(endpoint, frame))
        stub.reattach(channel.stub_end)

    def shutdown(self) -> None:
        """Permanently detach this proxy (its controller died).

        Stops the detection tick and forgets every app so the dead
        deployment can never send restore traffic to stubs that have
        since re-attached to a promoted backup's proxy.  Unflushed
        proxy-side batches are dropped too: a dead process's send
        queue never reaches the wire.
        """
        self._stop_tick()
        for record in self.apps.values():
            self.detector.forget(record.name)
            record.endpoint.drop_pending()
        self.apps.clear()
        if self._listener_registered and not self.controller.crashed:
            self.controller.unregister_listener(self.LISTENER_NAME)
            self._listener_registered = False

    # -- frame handling ------------------------------------------------------------

    def on_frame(self, endpoint, frame) -> None:
        """Receive one frame, inside the frame's trace context.

        The stub echoes the originating event's trace id on every frame,
        so anything this handler does downstream (commits, crash
        handling, re-dispatch) inherits the causal identity via the
        tracer's ambient context.
        """
        tracer = self.telemetry.tracer
        if tracer.enabled:
            tid = getattr(frame, "trace_id", 0)
            prev = tracer.current_trace
            tracer.current_trace = tid or prev
            try:
                self._dispatch_frame(endpoint, frame)
            finally:
                tracer.current_trace = prev
        else:
            self._dispatch_frame(endpoint, frame)

    def _dispatch_frame(self, endpoint, frame) -> None:
        rpc.trace_frame(self.telemetry, "recv", frame)
        if isinstance(frame, rpc.Register):
            self._on_register(endpoint, frame)
            return
        record = self.apps.get(frame.app_name)
        if record is None:
            return
        if isinstance(frame, rpc.Heartbeat):
            self.detector.record_heartbeat(record.name, self.sim.now)
        elif isinstance(frame, rpc.AppOutput):
            self._on_output(record, frame)
        elif isinstance(frame, rpc.EventComplete):
            self._on_complete(record, frame)
        elif isinstance(frame, rpc.CrashReport):
            self._handle_failure(record, kind="fail-stop",
                                 error=frame.error,
                                 traceback_text=frame.traceback_text,
                                 logs=frame.log_lines,
                                 offending_seq=frame.seq)
        elif isinstance(frame, rpc.RestoreAck):
            self._on_restore_ack(record, frame)

    def _on_register(self, endpoint, frame: rpc.Register) -> None:
        record = AppRecord(
            name=frame.app_name,
            subscriptions=frozenset(frame.subscriptions),
            endpoint=endpoint,
            supports_deep_restore=frame.supports_deep_restore,
            last_seq=frame.resume_from_seq,
        )
        self.apps[frame.app_name] = record
        self.detector.register(frame.app_name, self.sim.now)
        self._register_listener()
        self._push_context(record, force=True)
        # Late joiners still learn the current switch set: synthesize
        # SwitchJoin for every switch already connected (FloodLight
        # apps similarly receive switchAdded callbacks on registration).
        if "SwitchJoin" in record.subscriptions:
            from repro.controller.events import SwitchJoin

            tracer = self.telemetry.tracer
            for dpid in self.controller.connected_dpids():
                # Synthesized events are real control-loop work: each
                # gets its own trace, same as controller ingestion.
                tid = tracer.mint_trace() if tracer.enabled else 0
                record.queue.append((SwitchJoin(dpid), tid))
            self._pump(record)

    # -- dispatch -------------------------------------------------------------------

    def _lane_of(self, event) -> object:
        """Which lane an event travels in.

        Serial mode collapses everything to one lane (FIFO per app, the
        FloodLight pipeline).  With §5 concurrency lanes, events key by
        the originating switch -- "these events are often handled by
        different threads" -- and controller-level events share a
        dedicated lane.
        """
        if not self.parallel_lanes:
            return 0
        return getattr(event, "dpid", "controller")

    def _pump(self, record: AppRecord) -> None:
        """Dispatch queued events into every free lane, in queue order."""
        if record.status is not AppStatus.UP or not record.queue:
            return
        busy = set(record.inflights)
        remaining: Deque = deque()
        for event, tid in record.queue:
            lane = self._lane_of(event)
            if lane in busy:
                remaining.append((event, tid))
                continue
            busy.add(lane)
            record.last_seq += 1
            seq = record.last_seq
            txn = None
            if self.mode == "netlog":
                txn = self.manager.begin(record.name, event.type_name,
                                         trace_id=tid or None)
            record.inflights[lane] = Inflight(
                seq=seq, event=event, txn=txn, dispatched_at=self.sim.now,
                trace_id=tid)
            record.events_dispatched += 1
            self.detector.record_dispatch(record.name, seq, self.sim.now)
            deliver = rpc.EventDeliver(
                app_name=record.name, seq=seq, event=event, trace_id=tid,
            )
            rpc.trace_frame(self.telemetry, "send", deliver)
            record.endpoint.send(deliver)
        record.queue = remaining

    @staticmethod
    def _inflight_by_seq(record: AppRecord, seq: int):
        """(lane, Inflight) for an outstanding seq, or (None, None)."""
        for lane, inflight in record.inflights.items():
            if inflight.seq == seq:
                return lane, inflight
        return None, None

    def _on_output(self, record: AppRecord, frame: rpc.AppOutput) -> None:
        _, inflight = self._inflight_by_seq(record, frame.seq)
        if inflight is None:
            return  # stale output from an aborted event
        if self.mode == "netlog":
            self.manager.apply(inflight.txn, frame.dpid, frame.message)
        else:
            self.buffer.hold(record.name, frame.seq, frame.dpid, frame.message)

    def _on_complete(self, record: AppRecord, frame: rpc.EventComplete) -> None:
        lane, inflight = self._inflight_by_seq(record, frame.seq)
        if inflight is None:
            return
        self.detector.record_response(record.name, self.sim.now, seq=frame.seq)
        if self.telemetry.enabled:
            # The event round trip is split-phase (EventDeliver out,
            # EventComplete back), so it is recorded with an explicit
            # start rather than a context manager.
            self.telemetry.tracer.record_span(
                "appvisor.event", start=inflight.dispatched_at,
                trace_id=inflight.trace_id or None,
                app=record.name, seq=frame.seq,
                event=inflight.event.type_name,
                outputs=frame.output_count,
            )
            self.telemetry.metrics.observe(
                f"app.{record.name}.event_latency",
                self.sim.now - inflight.dispatched_at,
            )
        for counter_name, delta in frame.counter_deltas:
            self.controller.counters.inc(f"{record.name}.{counter_name}", delta)
        violations = self._finish_transaction(record, inflight, frame)
        if violations:
            record.byzantine_count += 1
            self._handle_failure(
                record, kind="byzantine",
                error="; ".join(str(v) for v in violations[:3]),
                violations=violations,
                offending_seq=frame.seq,
            )
            return
        record.events_completed += 1
        del record.inflights[lane]
        self._pump(record)

    def _finish_transaction(self, record, inflight, frame):
        """Commit/flush the event's outputs; returns byzantine violations
        *attributable to this transaction*.

        Attribution is differential: a violation counts against this
        transaction only if it exists WITH the transaction's effects
        and vanishes WITHOUT them.  Pre-existing violations (another
        app's still-unrolled-back damage) must not get this app's
        transaction aborted -- the paper assumes the last event caused
        the failure, but with several apps in flight the proxy must not
        cross-attribute.
        """
        topo = self.controller.topology.view()
        hosts = self.controller.devices.all()
        if self.mode == "netlog":
            if not (self.byzantine_check and inflight.txn.records):
                self.manager.commit(inflight.txn)
                return []
            violations = self.crashpad.check_byzantine(
                self.manager.current_tables(), topo, hosts
            )
            if not violations:
                self.manager.commit(inflight.txn)
                return []
            # Differential attribution: apply this txn's inverses to a
            # scratch copy -- the world as it would be without the txn.
            undo_ops = [
                (rec.dpid, inverse)
                for rec in reversed(inflight.txn.records)
                for inverse in rec.inverse_messages
            ]
            without = self.crashpad.check_byzantine(
                self.manager.preview_tables(undo_ops), topo, hosts
            )
            without_keys = {_violation_key(v) for v in without}
            ours = [v for v in violations
                    if _violation_key(v) not in without_keys]
            if ours:
                self.manager.abort(inflight.txn)
            else:
                self.manager.commit(inflight.txn)
            return ours
        # buffer mode: vet the preview BEFORE anything touches a switch.
        pending = self.buffer.pending(record.name, frame.seq)
        if self.byzantine_check and pending:
            preview = self.manager.preview_tables(pending)
            violations = self.crashpad.check_byzantine(preview, topo, hosts)
            if violations:
                baseline = self.crashpad.check_byzantine(
                    self.manager.current_tables(), topo, hosts)
                baseline_keys = {_violation_key(v) for v in baseline}
                ours = [v for v in violations
                        if _violation_key(v) not in baseline_keys]
                if ours:
                    self.buffer.discard(record.name, frame.seq)
                    return ours
        self.buffer.flush(record.name, frame.seq,
                          event_desc=inflight.event.type_name)
        return []

    # -- failure handling -----------------------------------------------------------

    def _critical_path_summary(self, trace_id: int, top: int = 3) -> list:
        """Top critical-path self-time rows for one trace, for the
        ticket (§3.3 made actionable: where the failing event's latency
        actually sat).  Runs on the failure path only -- never per
        event -- so the span scan's cost is irrelevant."""
        if not self.telemetry.enabled or not trace_id:
            return []
        from repro.telemetry.causal import analyze

        analysis = analyze(self.telemetry.tracer.to_dicts(),
                           trace_ids=[trace_id])
        return [
            {"name": name,
             "self_time": round(entry["total"], 9),
             "share": round(entry["fraction"], 4),
             "count": int(entry["count"])}
            for name, entry in analysis.top(top)
        ]

    def _handle_failure(self, record: AppRecord, kind: str, error: str = "",
                        traceback_text: str = "", logs=(),
                        violations=None,
                        offending_seq: Optional[int] = None) -> None:
        """A failure was detected: roll back, ticket, decide, recover.

        ``offending_seq`` pinpoints which in-flight event failed (§5:
        "we can pin-point which event causes the thread to crash");
        None means the process died between events (heartbeat loss
        while idle).  Any *other* in-flight events are collateral: their
        transactions are aborted and the events re-queued for delivery
        after recovery.
        """
        if record.status is not AppStatus.UP:
            return  # already being handled
        if self.telemetry.enabled:
            self.telemetry.tracer.event(
                "crashpad.failure", app=record.name, kind=kind,
                seq=offending_seq, error=error,
            )
        # Identify the offending in-flight event (if any) and separate
        # it from innocent-bystander lanes.
        offending_inflight = None
        if offending_seq is not None:
            lane, offending_inflight = self._inflight_by_seq(
                record, offending_seq)
            if offending_inflight is not None:
                del record.inflights[lane]
        elif len(record.inflights) == 1:
            # Unattributed failure with exactly one candidate.
            lane, offending_inflight = next(iter(record.inflights.items()))
            del record.inflights[lane]
        offending_event = (offending_inflight.event
                           if offending_inflight else None)
        # The failure belongs to the offending event's trace; a silent
        # death between events falls back to the ambient context (the
        # frame or sweep that detected it).
        offending_trace = (offending_inflight.trace_id
                           if offending_inflight
                           else (self.telemetry.tracer.current_trace or 0))
        wal_excerpt: List[str] = []
        if offending_inflight is not None:
            if self.mode == "netlog" and offending_inflight.txn is not None:
                wal_excerpt = [
                    f"s{rec.dpid}: {rec.message.type_name} {rec.message.match}"
                    for rec in offending_inflight.txn.records
                ]
                self.manager.abort(offending_inflight.txn)
            else:
                self.buffer.discard(record.name, offending_inflight.seq)
        # Collateral lanes: undo their partial effects and remember
        # them for re-delivery (fresh seqs) after the restore.
        collateral = sorted(record.inflights.values(), key=lambda i: i.seq)
        drop_seqs = tuple(i.seq for i in collateral)
        for inflight in collateral:
            if self.mode == "netlog" and inflight.txn is not None:
                self.manager.abort(inflight.txn)
            else:
                self.buffer.discard(record.name, inflight.seq)
        record.inflights.clear()
        record.crash_count += 1
        record.crash_times.append(self.sim.now)
        topo = self._transformation_view()
        decision = self.crashpad.decide(record.name, offending_event, topo)
        self.crashpad.tickets.create(
            app_name=record.name,
            time=self.sim.now,
            failure_kind=kind,
            offending_event=repr(offending_event),
            exception=error,
            traceback_text=traceback_text,
            app_logs=list(logs),
            wal_excerpt=wal_excerpt,
            recovery_policy=decision.policy.value,
            recovery_note=decision.note,
            flight_records=self.telemetry.flight_dump(),
            trace_id=offending_trace,
            critical_path=self._critical_path_summary(offending_trace),
        )
        self.controller.dispatch(AppCrashed(app_name=record.name, reason=kind))
        if self.shutdown_on_critical and violations and \
                self.crashpad.has_critical(violations):
            # §5: a "No-Compromise" invariant was violated -- the
            # operator prefers shutting the whole network down over
            # running it unsafely.  This is the one failure LegoSDN
            # *deliberately* lets reach the controller.
            record.status = AppStatus.DEAD
            self.detector.forget(record.name)
            self.controller.crash(
                ProxyShutdown(
                    f"critical invariant violated by {record.name}: {error}"
                ),
                culprit=f"{self.LISTENER_NAME}/no-compromise-invariant",
            )
            return
        if decision.lets_app_die:
            record.status = AppStatus.DEAD
            self.detector.forget(record.name)
            return
        # Recover: restore the checkpoint, then skip or transform.
        record.status = AppStatus.RECOVERING
        record.recovery_started_at = self.sim.now
        record.recovery_trace_id = offending_trace
        restore_seq = (offending_inflight.seq if offending_inflight
                       else record.last_seq + 1)
        self.detector.clear(record.name, self.sim.now)
        # Collateral events are re-delivered first (their original
        # order) under their own traces, preceded by any transformation
        # of the offending one (which stays on the offender's trace --
        # the replacement IS that event, equivalence-transformed).
        for inflight in reversed(collateral):
            record.queue.appendleft((inflight.event, inflight.trace_id))
        if decision.replacement_events:
            record.events_transformed += 1
            record.queue.extendleft(
                (ev, offending_trace)
                for ev in reversed(decision.replacement_events))
        elif offending_event is not None:
            record.events_skipped += 1
        if self._recovery_is_futile(record) and self._stub_has_replica(record):
            # §5: the app keeps dying right after every recovery, so
            # its checkpointed state may be poisoned by earlier events
            # -- escalate to the STS-guided deep restore.  Only stubs
            # with a replica factory can run the search; others keep
            # using plain restores (every recovery still succeeds, the
            # bug just keeps being skipped).
            record.deep_restores += 1
            command = rpc.DeepRestoreCommand(
                app_name=record.name, offending_seq=restore_seq,
                drop_seqs=drop_seqs, trace_id=offending_trace,
            )
        else:
            command = rpc.RestoreCommand(
                app_name=record.name, offending_seq=restore_seq,
                drop_seqs=drop_seqs, trace_id=offending_trace,
            )
        rpc.trace_frame(self.telemetry, "send", command)
        record.endpoint.send(command)

    #: Escalate to a deep (STS-guided) restore when an app crashes this
    #: many times within DEEP_RESTORE_WINDOW seconds -- the signature of
    #: a cumulative bug whose poison survives plain restores (§5).
    DEEP_RESTORE_THRESHOLD = 3
    DEEP_RESTORE_WINDOW = 2.0

    def _recovery_is_futile(self, record: AppRecord) -> bool:
        cutoff = self.sim.now - self.DEEP_RESTORE_WINDOW
        recent = [t for t in record.crash_times if t >= cutoff]
        return len(recent) >= self.DEEP_RESTORE_THRESHOLD

    @staticmethod
    def _stub_has_replica(record: AppRecord) -> bool:
        return record.supports_deep_restore

    #: How far back (seconds) to look for just-removed links when
    #: reconstructing the pre-failure topology for transformations.
    TRANSFORM_LOOKBACK = 1.0

    def _transformation_view(self):
        """The topology as the failed app knew it.

        The live view has already dropped the failed switch's links, so
        fold recently removed links back in -- the equivalence
        transformation decomposes a SwitchLeave into exactly those
        LinkRemoved events.
        """
        topo_service = self.controller.topology
        view = topo_service.view()
        recent = topo_service.removed_links_since(
            self.sim.now - self.TRANSFORM_LOOKBACK
        )
        if not recent:
            return view
        links = set(view.links) | set(recent)
        switches = set(view.switches)
        for dpid_a, _, dpid_b, _ in recent:
            switches.update((dpid_a, dpid_b))
        from repro.controller.api import TopoView

        return TopoView(switches=tuple(sorted(switches)),
                        links=tuple(sorted(links)),
                        version=view.version)

    def _on_restore_ack(self, record: AppRecord, frame: rpc.RestoreAck) -> None:
        if record.status is not AppStatus.RECOVERING:
            return
        if self.telemetry.enabled:
            # Detection -> checkpoint restore -> replay -> back up: the
            # paper's recovery window, end to end.
            self.telemetry.tracer.record_span(
                "crashpad.recovery", start=record.recovery_started_at,
                status="ok" if frame.ok else "error",
                trace_id=record.recovery_trace_id or None,
                app=record.name, ok=frame.ok,
                replayed=frame.replayed_events,
                restore_cost=frame.restore_cost,
                deep=bool(frame.sts_culprits),
            )
            self.telemetry.metrics.observe(
                f"app.{record.name}.recovery_time",
                self.sim.now - record.recovery_started_at,
            )
        if not frame.ok:
            record.status = AppStatus.DEAD
            self.detector.forget(record.name)
            return
        record.status = AppStatus.UP
        record.recoveries += 1
        self.detector.clear(record.name, self.sim.now)
        self._pump(record)

    def note_channel_fault(self, app_name: str, fault) -> None:
        """The app's channel exhausted its retry budget (link trouble).

        Wired by the runtime to ``UdpChannel.on_fault``.  The detector
        remembers the fault so the next detection sweep attributes the
        app's silence to the link instead of declaring it dead.
        """
        self.detector.record_channel_fault(app_name, self.sim.now)
        if self.telemetry.enabled:
            self.telemetry.tracer.event(
                "appvisor.channel_fault", app=app_name,
                side=fault.side, seq=fault.seq, attempts=fault.attempts,
            )

    # -- periodic work -----------------------------------------------------------------

    def _tick(self) -> None:
        """Failure detection sweep + context pushes."""
        now = self.sim.now
        for suspicion in self.detector.suspects(now):
            record = self.apps.get(suspicion.app_name)
            if record is None or record.status is not AppStatus.UP:
                continue
            if suspicion.reason == "channel-fault":
                # The app is (probably) fine; the link is not.  A
                # restore would discard healthy state and re-deliver
                # events into the same bad channel -- do nothing and
                # let the retry layer / the operator handle the link.
                record.channel_suspicions += 1
                continue
            kind = ("hang" if suspicion.reason == "heartbeat-loss"
                    else "fail-stop-silent")
            self._handle_failure(
                record, kind=kind,
                error=f"{suspicion.reason} (silent for "
                      f"{suspicion.silent_for * 1000:.0f} ms)",
                offending_seq=suspicion.inflight_seq,
            )
        for record in self.apps.values():
            self._push_context(record)

    def _push_context(self, record: AppRecord, force: bool = False) -> None:
        topo_version = self.controller.topology.version
        device_version = self.controller.devices.version
        if (not force and topo_version == record.pushed_topo_version
                and device_version == record.pushed_device_version):
            return
        record.pushed_topo_version = topo_version
        record.pushed_device_version = device_version
        push = rpc.ContextPush(
            topo=self.controller.topology.view(),
            hosts=tuple(self.controller.devices.all().values()),
        )
        rpc.trace_frame(self.telemetry, "send", push)
        record.endpoint.send(push)

    # -- introspection -------------------------------------------------------------------

    def record(self, app_name: str) -> Optional[AppRecord]:
        return self.apps.get(app_name)

    def live_apps(self) -> List[str]:
        return sorted(
            name for name, record in self.apps.items()
            if record.status is AppStatus.UP
        )

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-app counters for experiment reporting."""
        return {
            name: {
                "dispatched": record.events_dispatched,
                "completed": record.events_completed,
                "crashes": record.crash_count,
                "recoveries": record.recoveries,
                "skipped": record.events_skipped,
                "transformed": record.events_transformed,
                "byzantine": record.byzantine_count,
                "deep_restores": record.deep_restores,
                "channel_suspicions": record.channel_suspicions,
            }
            for name, record in self.apps.items()
        }
