"""Tests for §3.4 controller upgrades: state retention and outage."""

import pytest

from repro.apps import FlowMonitor, LearningSwitch
from repro.controller.monolithic import MonolithicRuntime
from repro.core.runtime import LegoSDNRuntime
from repro.core.upgrade import upgrade_legosdn, upgrade_monolithic
from repro.network.net import Network
from repro.network.topology import linear_topology


def monitor_state(runtime):
    return runtime.app("monitor").total_observations()


def warmed_monolithic():
    net = Network(linear_topology(2, 1), seed=0)
    runtime = MonolithicRuntime(net.controller)
    runtime.launch_app(FlowMonitor)
    runtime.launch_app(LearningSwitch)
    net.start()
    net.run_for(1.0)
    net.ping("h1", "h2")
    return net, runtime


def warmed_legosdn():
    net = Network(linear_topology(2, 1), seed=0)
    runtime = LegoSDNRuntime(net.controller)
    runtime.launch_app(FlowMonitor())
    runtime.launch_app(LearningSwitch())
    net.start()
    net.run_for(1.0)
    net.ping("h1", "h2")
    net.run_for(0.5)
    return net, runtime


class TestMonolithicUpgrade:
    def test_state_lost(self):
        net, runtime = warmed_monolithic()
        assert monitor_state(runtime) > 0
        report = upgrade_monolithic(net, runtime, upgrade_duration=1.0,
                                    state_probe=monitor_state)
        assert not report.state_retained
        assert report.state_after == 0
        assert report.outage >= 1.0

    def test_controller_back_after_upgrade(self):
        net, runtime = warmed_monolithic()
        upgrade_monolithic(net, runtime, 1.0, monitor_state)
        net.run_for(1.0)
        assert runtime.is_up
        assert net.reachability() == 1.0


class TestLegoSDNUpgrade:
    def test_state_retained(self):
        net, runtime = warmed_legosdn()
        before = monitor_state(runtime)
        assert before > 0
        report = upgrade_legosdn(net, runtime, upgrade_duration=1.0,
                                 state_probe=monitor_state)
        assert report.state_retained
        assert report.state_after == before

    def test_apps_resume_after_upgrade(self):
        net, runtime = warmed_legosdn()
        upgrade_legosdn(net, runtime, 1.0, monitor_state)
        net.run_for(2.0)
        assert runtime.is_up
        assert net.reachability(wait=1.0) == 1.0

    def test_app_state_keeps_growing_after_upgrade(self):
        net, runtime = warmed_legosdn()
        report = upgrade_legosdn(net, runtime, 1.0, monitor_state)
        net.run_for(2.0)
        net.ping("h1", "h2")
        net.run_for(1.0)
        assert monitor_state(runtime) > report.state_after


class TestComparison:
    def test_legosdn_retains_monolithic_loses(self):
        """The headline §3.4 claim in one assertion."""
        mono_net, mono_rt = warmed_monolithic()
        lego_net, lego_rt = warmed_legosdn()
        mono_report = upgrade_monolithic(mono_net, mono_rt, 1.0, monitor_state)
        lego_report = upgrade_legosdn(lego_net, lego_rt, 1.0, monitor_state)
        assert lego_report.state_retained and not mono_report.state_retained
