"""E15: hardening the controller itself (§5).

"We, however, believe some of the techniques embodied in the design of
Crash-Pad can be used to harden the controller itself against
failures."

ControllerGuard applies Crash-Pad's checkpoint/restore to the
controller's *service state*: after a controller crash + reboot, the
discovered topology and learned host locations are reinstated from the
last snapshot instead of being relearned from scratch (LLDP rounds +
PacketIns).

Measured, with deliberately slow discovery (2 s rounds) to make the
relearning period visible: time from reboot until (a) the topology
view is complete again, and (b) the network regains full reachability
through a routing app.

Expected shape: the guarded reboot restores the topology instantly and
serves traffic immediately; the plain reboot pays at least one
discovery round before either happens.
"""

from repro.apps import ShortestPathRouting
from repro.core.guard import ControllerGuard
from repro.core.runtime import LegoSDNRuntime
from repro.network.net import Network
from repro.network.topology import ring_topology

from benchmarks.harness import print_table, run_once

DISCOVERY_INTERVAL = 2.0
LINKS_EXPECTED = 4


def _run(guarded):
    net = Network(ring_topology(4, 1), seed=0,
                  discovery_interval=DISCOVERY_INTERVAL)
    runtime = LegoSDNRuntime(net.controller)
    runtime.launch_app(ShortestPathRouting())
    net.start()
    net.run_for(DISCOVERY_INTERVAL + 1.5)
    net.reachability(wait=1.5)
    guard = ControllerGuard(net.controller, checkpoint_interval=0.5)
    if guarded:
        guard.start()
        net.run_for(1.0)
    net.controller.crash(RuntimeError("controller bug"), culprit="bug")
    net.run_for(0.5)  # the outage
    reboot_at = net.now
    if guarded:
        guard.reboot_with_restore()
    else:
        net.controller.reboot()
    # time until topology complete
    topo_complete = None
    while net.now - reboot_at < 3 * DISCOVERY_INTERVAL:
        if len(net.controller.topology.view().links) >= LINKS_EXPECTED:
            topo_complete = net.now - reboot_at
            break
        net.run_for(0.05)
    # time until full service
    service_at = None
    start = net.now
    while net.now - reboot_at < 4 * DISCOVERY_INTERVAL:
        if net.reachability(wait=0.5) == 1.0:
            service_at = net.now - reboot_at
            break
    return {
        "topo_complete": topo_complete,
        "service": service_at,
        "snapshots": guard.snapshots_taken,
    }


def test_e15_controller_hardening(benchmark):
    def experiment():
        return {
            "plain reboot": _run(guarded=False),
            "guarded reboot": _run(guarded=True),
        }

    r = run_once(benchmark, experiment)
    print_table(
        f"E15: controller crash + reboot (discovery rounds every "
        f"{DISCOVERY_INTERVAL:.0f}s)",
        ["recovery", "topology complete after", "full service after"],
        [[name,
          f"{row['topo_complete'] * 1000:.0f} ms"
          if row["topo_complete"] is not None else ">6000 ms",
          f"{row['service'] * 1000:.0f} ms"
          if row["service"] is not None else ">8000 ms"]
         for name, row in r.items()],
    )
    benchmark.extra_info["results"] = r

    plain, guarded = r["plain reboot"], r["guarded reboot"]
    assert guarded["topo_complete"] is not None
    assert plain["topo_complete"] is not None
    # The guard restores the view instantly; plain waits for the next
    # discovery round (anywhere in [0, interval] after the reboot).
    assert guarded["topo_complete"] < 0.1
    assert plain["topo_complete"] > 0.3
    assert plain["topo_complete"] > guarded["topo_complete"]
    # ...and service follows the same shape.
    assert guarded["service"] < plain["service"]
