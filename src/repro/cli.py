"""Command-line interface: ``python -m repro <command>``.

Gives operators the common workflows without writing a script:

- ``demo``          -- the quickstart crash/recovery walk-through
- ``drill``         -- a parameterised fault drill on a chosen topology
- ``replicate``     -- primary-backup failover demo (kill the primary)
- ``trace``         -- run a scenario with tracing on; print/save the trace
- ``serve``         -- run a scenario, then serve /metrics over HTTP
- ``chaos``         -- stress the control channel with seeded faults
- ``byzantine``     -- compromise a replica; sweep tamper-rate x mode
- ``minimize``      -- record a planted failure; shrink it to its
  minimal causal sequence and replay the repro standalone
- ``corpus``        -- run the chaos-correlated bug corpus grid;
  regenerate or verify CORPUS_PR10.json
- ``bug-study``     -- replay a synthetic bug corpus (the E1 experiment)
- ``check-policy``  -- validate a compromise-policy file
- ``show-topology`` -- describe a builder topology
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.version import __version__

TOPOLOGIES = ("linear", "ring", "tree", "mesh", "fattree")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _build_topology(name: str, size: int):
    from repro.network import topology as topo_mod

    if name == "linear":
        return topo_mod.linear_topology(size, 1)
    if name == "ring":
        return topo_mod.ring_topology(max(size, 3), 1)
    if name == "tree":
        return topo_mod.tree_topology(depth=2, fanout=max(size // 2, 2),
                                      hosts_per_leaf=1)
    if name == "mesh":
        return topo_mod.mesh_topology(size, 1)
    if name == "fattree":
        return topo_mod.fat_tree_topology(size if size % 2 == 0 else size + 1)
    raise ValueError(f"unknown topology {name!r}")


def cmd_demo(args) -> int:
    """The quickstart scenario: contain a crash, recover, show a ticket."""
    from repro.apps import LearningSwitch
    from repro.core.runtime import LegoSDNRuntime
    from repro.faults import crash_on
    from repro.network.net import Network
    from repro.workloads.traffic import inject_marker_packet

    net = Network(_build_topology(args.topology, args.size), seed=args.seed)
    runtime = LegoSDNRuntime(net.controller)
    runtime.launch_app(crash_on(LearningSwitch(), payload_marker="BOOM"))
    net.start()
    net.run_for(1.5)
    print(f"reachability (healthy): {net.reachability():.0%}")
    net.run_for(LearningSwitch.IDLE_TIMEOUT + 1.0)
    hosts = sorted(net.hosts)
    inject_marker_packet(net, hosts[0], hosts[-1], "BOOM")
    net.run_for(2.0)
    stats = runtime.stats()["learning_switch"]
    print(f"app crashes: {stats['crashes']}, recoveries: "
          f"{stats['recoveries']}, controller up: {runtime.is_up}")
    print(f"reachability (after recovery): {net.reachability(wait=1.0):.0%}")
    if runtime.tickets.all():
        print()
        print(runtime.tickets.all()[0].render())
    return 0


def cmd_drill(args) -> int:
    """A fault drill: traffic + scripted failures on a chosen runtime."""
    from repro.apps import make_app
    from repro.controller.monolithic import MonolithicRuntime
    from repro.core.crashpad.policy_lang import PolicyTable
    from repro.core.runtime import LegoSDNRuntime
    from repro.network.net import Network
    from repro.workloads.failure import FailureSchedule
    from repro.workloads.traffic import TrafficWorkload

    net = Network(_build_topology(args.topology, args.size), seed=args.seed)
    if args.runtime == "legosdn":
        policy_table = None
        if args.policy:
            with open(args.policy) as fh:
                policy_table = PolicyTable.parse(fh.read())
        runtime = LegoSDNRuntime(net.controller, policy_table=policy_table,
                                 mode=args.mode)
        for name in args.apps:
            runtime.launch_app(make_app(name))
    else:
        runtime = MonolithicRuntime(net.controller, auto_restart=True)
        for name in args.apps:
            runtime.launch_app(lambda n=name: make_app(n))
    net.start()
    net.run_for(1.5)
    TrafficWorkload(net, rate=args.rate).start(args.duration * 0.8)
    schedule = FailureSchedule()
    dpids = list(net.switches)
    if len(dpids) >= 2:
        schedule.link_down(args.duration * 0.3, dpids[0], dpids[1])
        schedule.link_up(args.duration * 0.6, dpids[0], dpids[1])
    schedule.apply(net)
    net.run_for(args.duration)
    print(f"drill complete at t={net.now:.1f}s")
    print(f"  controller up:  {not net.controller.crashed}")
    print(f"  reachability:   {net.reachability(wait=1.0):.0%}")
    if args.runtime == "legosdn":
        for name, stats in sorted(runtime.stats().items()):
            print(f"  {name}: {stats}")
        print(f"  tickets: {len(runtime.tickets)}")
        if args.report:
            from repro.report import write_report

            write_report(args.report, net, runtime,
                         title="LegoSDN fault-drill report")
            print(f"  report written to {args.report}")
    else:
        print(f"  controller crashes: {runtime.crash_count}, "
              f"restarts: {runtime.restart_count}")
    return 0


def cmd_replicate(args) -> int:
    """Controller HA walk-through: kill the primary mid-workload and
    watch a warm backup take over without losing the apps."""
    from repro.apps import LearningSwitch
    from repro.core.runtime import LegoSDNRuntime
    from repro.network.net import Network
    from repro.replication import ReplicaSet
    from repro.telemetry import Telemetry
    from repro.workloads import ChurnWorkload, TrafficWorkload

    telemetry = Telemetry(enabled=True,
                          flight_capacity=args.flight_capacity)
    net = Network(_build_topology(args.topology, args.size),
                  seed=args.seed, telemetry=telemetry)
    runtime = LegoSDNRuntime(net.controller)
    replicas = ReplicaSet(net, runtime, backups=args.backups,
                          lease_timeout=args.lease, seed=args.seed)
    runtime.launch_app(LearningSwitch())
    net.start()
    net.run_for(1.5)
    TrafficWorkload(net, rate=args.rate, seed=args.seed).start(args.duration)
    churn = None
    if len(net.hosts) > 2 and args.churn > 0:
        churn = ChurnWorkload(net, rate=args.churn, seed=args.seed)
        churn.start(args.duration)
    net.run_for(args.duration * 0.4)
    victim = replicas.primary.replica_id
    print(f"t={net.now:.2f}s: killing primary {victim} "
          f"(epoch {replicas.epoch}, {replicas.ship_index} records shipped)")
    replicas.crash_primary()
    net.run_for(args.duration * 0.6 + 1.0)
    for fo in replicas.failovers:
        print(f"  failover -> epoch {fo.epoch}: {fo.from_replica} -> "
              f"{fo.to_replica} in {fo.duration * 1000:.0f} ms "
              f"(orphans rolled back: {fo.orphan_txns}, "
              f"tail replayed: {fo.replayed_records})")
    divergence = replicas.divergence()
    up = churn.up_hosts() if churn else sorted(net.hosts)
    pairs = [(a, b) for a in up for b in up if a != b]
    print(f"  primary now:    {replicas.primary.replica_id} "
          f"(epoch {replicas.epoch})")
    print(f"  fenced writes:  {replicas.fence.fenced_writes}")
    print(f"  divergence:     {divergence} rule(s)")
    if churn:
        print(f"  host churn:     {churn.leaves} leaves, {churn.joins} joins")
    print(f"  apps alive:     {', '.join(replicas.runtime.live_apps())}")
    print(f"  reachability:   {net.reachability(pairs=pairs, wait=1.0):.0%}")
    return 0 if (replicas.failovers and divergence == 0) else 1


def cmd_shard(args) -> int:
    """Sharded control-plane walk-through: K primary shards over one
    fabric, a mid-run shard-primary kill (contained to its shard), and
    freshness-bounded quorum reads served by warm backups."""
    from repro.apps import LearningSwitch
    from repro.network.net import Network
    from repro.shard import ShardCoordinator, ShardReadGateway
    from repro.workloads import ChurnWorkload, TrafficWorkload

    net = Network(_build_topology(args.topology, args.size),
                  seed=args.seed)
    coordinator = ShardCoordinator(
        net, shards=args.shards, apps=(LearningSwitch,),
        backups=args.backups, service_time=args.service_time,
        telemetry_enabled=True, seed=args.seed)
    coordinator.start()
    net.run_for(1.5)
    print(f"sharded plane up: {args.shards} shards over "
          f"{len(net.switches)} switches")
    for shard_id, handle in sorted(coordinator.shards.items()):
        print(f"  shard {shard_id}: dpids {handle.dpids} "
              f"(primary {handle.primary.replica_id}, "
              f"{args.backups} backup(s))")

    TrafficWorkload(net, rate=args.rate, seed=args.seed).start(args.duration)
    churn = None
    if len(net.hosts) > 2 and args.churn > 0:
        churn = ChurnWorkload(net, rate=args.churn, seed=args.seed)
        churn.start(args.duration)
    net.run_for(args.duration * 0.4)

    victim = args.kill_shard
    if victim is not None:
        if victim not in coordinator.shards:
            print(f"error: no shard {victim} "
                  f"(valid: {sorted(coordinator.shards)})")
            return 2
        print(f"t={net.now:.2f}s: killing shard {victim}'s primary "
              f"{coordinator.shards[victim].primary.replica_id}")
        coordinator.crash_shard_primary(victim)
    net.run_for(args.duration * 0.6 + 1.0)

    gateway = ShardReadGateway(coordinator, freshness=args.freshness)
    sample_dpid = sorted(net.switches)[0]
    read = gateway.flow_rules(sample_dpid)
    health = coordinator.shard_health()
    ok = True
    print(f"t={net.now:.2f}s: final state")
    for shard_id, handle in sorted(coordinator.shards.items()):
        rs = handle.replicas
        divergence = rs.divergence()
        ok = ok and divergence == 0
        tag = " (failed over)" if rs.failovers else ""
        print(f"  shard {shard_id}: primary {rs.primary.replica_id} "
              f"epoch {rs.epoch}, failovers {len(rs.failovers)}, "
              f"divergence {divergence}, "
              f"ingested {handle.events_ingested()}{tag}")
    if victim is not None:
        ok = ok and len(coordinator.shards[victim].replicas.failovers) == 1
        ok = ok and all(
            not handle.replicas.failovers
            for shard_id, handle in coordinator.shards.items()
            if shard_id != victim)
    print(f"  health:       {health['score']:.2f} ({health['status']})")
    print(f"  quorum read:  dpid {sample_dpid} -> {len(read.rules)} "
          f"rule(s) from {read.served_by} "
          f"({'backup' if read.from_backup else 'primary fallback'}, "
          f"staleness {read.staleness * 1000:.0f} ms, "
          f"bound {args.freshness * 1000:.0f} ms)")
    ok = ok and read.staleness <= args.freshness
    up = churn.up_hosts() if churn else sorted(net.hosts)
    pairs = [(a, b) for a in up for b in up if a != b]
    reach = net.reachability(pairs=pairs, wait=1.0)
    ok = ok and reach == 1.0
    print(f"  reachability: {reach:.0%}")
    return 0 if ok else 1


def cmd_trace(args) -> int:
    """Run the quickstart scenario with tracing enabled; print the
    per-seam span summary and optionally save the full trace."""
    from repro.apps import LearningSwitch
    from repro.core.runtime import LegoSDNRuntime
    from repro.faults import crash_on
    from repro.network.net import Network
    from repro.telemetry import Telemetry
    from repro.telemetry.export import write_trace
    from repro.workloads.traffic import inject_marker_packet

    telemetry = Telemetry(enabled=True,
                          flight_capacity=args.flight_capacity)
    net = Network(_build_topology(args.topology, args.size),
                  seed=args.seed, telemetry=telemetry)
    runtime = LegoSDNRuntime(net.controller)
    app = LearningSwitch()
    if args.crash:
        app = crash_on(app, payload_marker="BOOM")
    runtime.launch_app(app)
    net.start()
    net.run_for(1.5)
    # Healthy traffic first, so the trace shows complete control-loop
    # transits (dispatch -> RPC -> app -> NetLog commit) ...
    net.reachability()
    hosts = sorted(net.hosts)
    if args.crash and len(hosts) >= 2:
        # Idle the reactive flows out so the marker packet punts to the
        # controller (and the app), then crash and recover.
        net.run_for(LearningSwitch.IDLE_TIMEOUT + 1.0)
        inject_marker_packet(net, hosts[0], hosts[-1], "BOOM")
        net.run_for(2.0)
    tracer = telemetry.tracer
    print(f"trace captured over {net.now:.2f}s simulated: "
          f"{len(tracer.spans)} spans, {len(telemetry.recorder)} "
          "flight-recorder events retained")
    by_name = {}
    for span in tracer.spans:
        by_name.setdefault(span.name, []).append(span.duration)
    for name in sorted(by_name):
        durations = by_name[name]
        mean = sum(durations) / len(durations)
        print(f"  {name:<26} x{len(durations):<5} "
              f"mean {mean * 1000:8.3f} ms  "
              f"max {max(durations) * 1000:8.3f} ms")
    for ticket in runtime.tickets.all():
        print(f"ticket #{ticket.ticket_id}: {ticket.failure_kind} in "
              f"{ticket.app_name}; flight recorder attached "
              f"{len(ticket.flight_records)} event(s)")
    if args.out:
        write_trace(args.out, telemetry, fmt=args.format)
        print(f"trace ({args.format}) written to {args.out}")
    return 0


def _load_spans(path: str) -> list:
    """Spans from a saved trace document (or a bare span list)."""
    import json

    with open(path) as fh:
        doc = json.load(fh)
    return doc["spans"] if isinstance(doc, dict) else doc


def _run_traced_workload(args, loss: float):
    """A short traced control-loop workload for the causal commands.

    Mirrors the E17 adverse-network setup: reliable batched channels,
    optional chaos at ``loss`` (with 10% dup/reorder and delay jitter),
    random traffic, and a HealthWatchdog sweeping invariants against
    ground truth.  Returns ``(telemetry, watchdog, net)``.
    """
    from repro.apps import LearningSwitch
    from repro.core.runtime import LegoSDNRuntime
    from repro.faults.netfaults import ChaosProfile
    from repro.invariants.graph import NetSnapshot
    from repro.network.net import Network
    from repro.telemetry import HealthWatchdog, Telemetry
    from repro.workloads.traffic import TrafficWorkload

    telemetry = Telemetry(enabled=True,
                          flight_capacity=args.flight_capacity)
    net = Network(_build_topology(args.topology, args.size),
                  seed=args.seed, telemetry=telemetry)
    chaos = None
    if loss > 0:
        profile = ChaosProfile(seed=args.seed, loss=loss, duplicate=0.1,
                               reorder=0.1, jitter=0.0005)
        chaos = lambda name: profile  # noqa: E731 - per-app profile hook
    runtime = LegoSDNRuntime(net.controller, channel_retry_budget=12,
                             chaos=chaos)
    runtime.launch_app(LearningSwitch())
    watchdog = HealthWatchdog(
        telemetry, net.sim,
        snapshot_provider=lambda: NetSnapshot.from_network(net))
    net.start()
    net.run_for(1.0)
    TrafficWorkload(net, rate=args.rate, seed=args.seed,
                    selection="random").start(args.duration * 0.7)
    net.run_for(args.duration)
    return telemetry, watchdog, net


def cmd_trace_tree(args) -> int:
    """Render one trace's causal span tree; without a TRACE_ID, list
    every captured trace (id, root span, duration, span count)."""
    from repro.telemetry.causal import (
        build_trace_tree,
        render_tree,
        trace_summaries,
    )

    if args.infile:
        spans = _load_spans(args.infile)
    else:
        telemetry, watchdog, _net = _run_traced_workload(args, args.loss)
        watchdog.stop()
        spans = telemetry.tracer.to_dicts()
    if args.trace_id is None:
        rows = trace_summaries(spans)
        if not rows:
            print("no traced spans captured")
            return 1
        print(f"{len(rows)} trace(s) captured "
              "(repro trace tree <TRACE_ID> for one tree)")
        print(f"{'trace':>8} {'root':<22} {'event':<16} "
              f"{'spans':>5} {'ms':>9}")
        for row in rows[:40]:
            print(f"{row['trace_id']:>8} {row['root']:<22} "
                  f"{str(row['event']):<16} {row['spans']:>5} "
                  f"{row['duration'] * 1000:>9.3f}")
        if len(rows) > 40:
            print(f"... and {len(rows) - 40} more")
        return 0
    roots = build_trace_tree(spans, trace_id=args.trace_id)
    if not roots:
        print(f"trace {args.trace_id} not found")
        return 1
    print(f"trace {args.trace_id}:")
    print(render_tree(roots))
    return 0


def cmd_trace_critical_path(args) -> int:
    """Aggregate critical-path attribution across every captured
    trace: which component the control loop's latency actually sits
    in (app handling, RPC wire time, retransmission backoff, NetLog,
    checkpoint freezes, recovery)."""
    from repro.telemetry.causal import analyze

    watchdog = None
    telemetry = None
    if args.infile:
        spans = _load_spans(args.infile)
    else:
        telemetry, watchdog, _net = _run_traced_workload(args, args.loss)
        spans = telemetry.tracer.to_dicts()
    analysis = analyze(spans)
    if not analysis.attribution:
        print("no traced spans to analyze")
        return 1
    print(analysis.render(args.top))
    if telemetry is not None:
        from repro.telemetry.export import bytes_per_event

        metrics = telemetry.metrics
        derived = bytes_per_event(metrics)
        if derived is not None:
            sent = metrics.counters.get("channel.bytes_sent", 0)
            recv = metrics.counters.get("channel.bytes_recv", 0)
            events = metrics.recorders["span.appvisor.event"].count
            print(f"wire: {sent} B sent, {recv} B delivered, "
                  f"{events} events -> {derived:.1f} bytes/event")
    if watchdog is not None:
        payload = watchdog.healthz_payload()
        watchdog.stop()
        counts = payload["anomaly_counts"]
        summary = (", ".join(f"{kind} x{count}"
                             for kind, count in sorted(counts.items()))
                   or "none")
        print(f"watchdog: score {payload['score']:.2f} "
              f"({payload['status']}); anomalies: {summary}")
    return 0


def cmd_trace_diff(args) -> int:
    """Diff two traces segment by segment: which hot-path span
    (dispatch, RPC, checkpoint, NetLog commit) moved, and by how much."""
    from repro.telemetry.spandiff import (
        check_regression,
        diff_summaries,
        load_summary,
        render_diff,
    )

    base = load_summary(args.baseline)
    cand = load_summary(args.candidate)
    print(render_diff(diff_summaries(base, cand),
                      base_label=args.baseline,
                      cand_label=args.candidate))
    if args.check_regression is not None:
        ok, message = check_regression(base, cand, span=args.span,
                                       threshold=args.check_regression)
        print(("OK   " if ok else "FAIL ") + message)
        return 0 if ok else 1
    return 0


def cmd_serve(args) -> int:
    """Run the quickstart scenario with tracing on, then keep serving
    its metrics over HTTP (/metrics, /healthz, /trace.json)."""
    import time

    from repro.apps import LearningSwitch
    from repro.core.runtime import LegoSDNRuntime
    from repro.faults import crash_on
    from repro.invariants.graph import NetSnapshot
    from repro.network.net import Network
    from repro.telemetry import HealthWatchdog, Telemetry
    from repro.telemetry.serve import MetricsServer
    from repro.workloads.traffic import inject_marker_packet

    telemetry = Telemetry(enabled=True,
                          flight_capacity=args.flight_capacity)
    net = Network(_build_topology(args.topology, args.size),
                  seed=args.seed, telemetry=telemetry)
    runtime = LegoSDNRuntime(net.controller)
    runtime.launch_app(crash_on(LearningSwitch(), payload_marker="BOOM"))
    watchdog = HealthWatchdog(
        telemetry, net.sim,
        snapshot_provider=lambda: NetSnapshot.from_network(net))
    net.start()
    net.run_for(1.5)
    net.reachability()
    hosts = sorted(net.hosts)
    if len(hosts) >= 2:
        net.run_for(LearningSwitch.IDLE_TIMEOUT + 1.0)
        inject_marker_packet(net, hosts[0], hosts[-1], "BOOM")
        net.run_for(2.0)

    def health() -> str:
        status = "up" if runtime.is_up else "down"
        return (f"controller={status} sim_time={net.now:.2f}s "
                f"apps={len(runtime.live_apps())}")

    server = MetricsServer(telemetry, port=args.port, health=health,
                           watchdog=watchdog,
                           tickets=lambda: runtime.tickets.all())
    server.start()
    print(f"serving telemetry on {server.url}")
    print(f"  {server.url}/metrics      (Prometheus text)")
    print(f"  {server.url}/healthz      (health score + anomalies)")
    print(f"  {server.url}/trace.json   (spans + critical-path)")
    print(f"  {server.url}/tickets.json (problem tickets + minimized repros)")
    try:
        if args.linger is not None:
            time.sleep(args.linger)
        else:
            print("press Ctrl-C to stop")
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _run_chaos_point(args, loss: float):
    """One chaos run at a given loss rate; returns the stats dict."""
    from repro.apps import LearningSwitch
    from repro.core.runtime import LegoSDNRuntime
    from repro.faults.netfaults import ChaosProfile
    from repro.network.net import Network
    from repro.workloads.traffic import TrafficWorkload

    profile = ChaosProfile(seed=args.seed, loss=loss,
                           burst_loss=args.burst, duplicate=args.dup,
                           reorder=args.reorder, corrupt=args.corrupt,
                           jitter=args.jitter)
    if args.partition:
        start, duration = args.partition
        profile.partition(start, duration)
    net = Network(_build_topology(args.topology, args.size), seed=args.seed)
    runtime = LegoSDNRuntime(net.controller,
                             channel_retry_budget=args.retry_budget,
                             chaos=lambda name: profile)
    runtime.launch_app(LearningSwitch())
    net.start()
    net.run_for(1.0)
    TrafficWorkload(net, rate=args.rate, seed=args.seed,
                    selection="random").start(args.duration * 0.7)
    net.run_for(args.duration)
    channel = runtime.channels["learning_switch"]
    return {
        "loss": loss,
        "reachability": net.reachability(wait=1.0),
        "chaos": profile.stats(),
        "channel": channel.reliability_stats(),
        "channel_suspicions": runtime.proxy.stats()[
            "learning_switch"]["channel_suspicions"],
        "crashes": runtime.stats()["learning_switch"]["crashes"],
    }


def cmd_chaos(args) -> int:
    """Drive the control channel through a hostile network and report
    whether the app layer noticed: delivery stats, reachability, and a
    non-zero exit when reachability misses the --slo floor."""
    points = args.sweep if args.sweep else [args.loss]
    worst = 1.0
    for loss in points:
        result = _run_chaos_point(args, loss)
        chaos, chan = result["chaos"], result["channel"]
        worst = min(worst, result["reachability"])
        print(f"loss={loss:.0%}: reachability "
              f"{result['reachability']:.0%}")
        print(f"  injected : dropped={chaos['dropped']} "
              f"duplicated={chaos['duplicated']} "
              f"reordered={chaos['reordered']} "
              f"corrupted={chaos['corrupted']} "
              f"partition_drops={chaos['partition_drops']}")
        print(f"  repaired : retransmits={chan['retransmits']} "
              f"dups_dropped={chan['dup_datagrams_dropped']} "
              f"corrupt_rejected={chan['corrupt_rejected']} "
              f"abandoned={chan['abandoned']}")
        print(f"  verdict  : channel faults={chan['faults_raised']} "
              f"suspicions={result['channel_suspicions']} "
              f"app crashes={result['crashes']}")
    if worst < args.slo:
        print(f"SLO MISS: worst reachability {worst:.0%} "
              f"< floor {args.slo:.0%}")
        return 1
    print(f"SLO met: worst reachability {worst:.0%} "
          f">= floor {args.slo:.0%}")
    return 0


def _run_byzantine_point(args, tamper: float, mode: str):
    """One Byzantine run: a compromised backup at ``tamper`` fault rate
    under replication mode ``mode``; returns the stats dict."""
    from repro.apps import LearningSwitch
    from repro.core.runtime import LegoSDNRuntime
    from repro.faults.byzfaults import ByzantineProfile
    from repro.network.net import Network
    from repro.replication.replicaset import ReplicaSet
    from repro.workloads.traffic import TrafficWorkload

    profile = None
    if tamper > 0:
        # The liar: r1 tampers frames post-signature and votes
        # fabricated digests, starting after a clean warmup so the
        # detection latency is measurable.
        profile = ByzantineProfile(seed=args.seed, tamper=tamper,
                                   digest_lie=tamper,
                                   start=args.fault_start)
    net = Network(_build_topology(args.topology, args.size), seed=args.seed)
    runtime = LegoSDNRuntime(net.controller)
    replicas = ReplicaSet(
        net, runtime,
        backups=args.backups,
        repl_mode=mode,
        byzantine=(lambda rid: profile if rid == "r1" else None),
        seed=args.seed,
    )
    runtime.launch_app(LearningSwitch())
    net.start()
    net.run_for(1.0)
    TrafficWorkload(net, rate=args.rate, seed=args.seed,
                    selection="random").start(args.duration * 0.7)
    net.run_for(args.duration)
    stats = replicas.stats()
    stats["tamper"] = tamper
    stats["injected"] = profile.stats() if profile is not None else {}
    stats["divergence"] = replicas.divergence()
    stats["reachability"] = net.reachability(wait=1.0)
    return stats


def cmd_byzantine(args) -> int:
    """Sweep a tamper-rate x replication-mode matrix with a compromised
    backup and report whether the set noticed: signature rejections,
    vote conflicts, quarantines, and mode switches.  Exits non-zero
    when a mode that should detect the liar failed to (or when the
    primary's switch-state divergence is non-zero at the end)."""
    rates = args.sweep if args.sweep else [args.tamper]
    modes = args.modes
    failed = []
    for tamper in rates:
        for mode in modes:
            result = _run_byzantine_point(args, tamper, mode)
            injected = result["injected"]
            did_anything = any(
                injected.get(k, 0) for k in
                ("tampered", "equivocated", "replayed", "digests_lied"))
            print(f"tamper={tamper:.0%} mode={mode}: "
                  f"ended in {result['mode']} "
                  f"(switches={result['mode_switches']})")
            if injected:
                print(f"  injected : tampered={injected['tampered']} "
                      f"digests_lied={injected['digests_lied']} "
                      f"first_at={injected['first_fault_at']}")
            print(f"  detected : sig_rejected={result['sig_rejected']} "
                  f"auth_faults={result['auth_faults']} "
                  f"vote_conflicts={result['vote_conflicts']} "
                  f"quarantines={result['quarantines']}")
            print(f"  verdict  : divergence={result['divergence']} "
                  f"reachability={result['reachability']:.0%} "
                  f"votes confirmed={result['votes_confirmed']} "
                  f"stalls={result['vote_stalls']}")
            # The SLO: the primary's installed state must stay exactly
            # its NetLog's committed state (liars detected, never
            # obeyed), and any mode that can vote must have *noticed*
            # an active liar.
            point = f"tamper={tamper:.0%}/{mode}"
            if result["divergence"] != 0:
                failed.append(f"{point}: divergence "
                              f"{result['divergence']} != 0")
            if (did_anything and mode in ("byzantine", "adaptive")
                    and not (result["sig_rejected"]
                             or result["vote_conflicts"]
                             or result["quarantines"])):
                failed.append(f"{point}: liar went undetected")
    if failed:
        print("SLO MISS:")
        for line in failed:
            print(f"  {line}")
        return 1
    print(f"SLO met: {len(rates) * len(modes)} point(s), "
          "zero divergence, every active liar detected")
    return 0


def cmd_minimize(args) -> int:
    """Record the planted 3-event-dependent crash under chaos, shrink
    it to its minimal causal sequence (STS-style ddmin seeded by the
    failing event's trace), and replay the repro standalone."""
    from repro.debug import minimize_failure, planted_armed_recording

    print(f"recording planted failure (seed {args.seed}, "
          f"loss {args.loss:.0%}, {args.noise} noise events)...")
    harness, recording = planted_armed_recording(
        seed=args.seed, loss=args.loss, noise=args.noise)
    print(f"captured {len(recording.events)} event(s); "
          f"outcome: {recording.signature.describe()}")
    if not recording.signature.failed:
        print("error: the planted scenario did not fail", file=sys.stderr)
        return 2
    repro = minimize_failure(recording, harness)
    print(repro.render())
    replay = harness.replay(repro.minimal_events)
    ok = replay.reproduces(recording.signature)
    print(f"standalone replay: "
          f"{'reproduces the signature' if ok else 'DOES NOT reproduce'} "
          f"({replay.signature.describe()})")
    if recording.ticket is not None and recording.ticket.minimized:
        print(f"attached to problem ticket #{recording.ticket.ticket_id}")
    if args.expect_length is not None and len(repro) != args.expect_length:
        print(f"FAIL: minimized to {len(repro)} event(s), "
              f"expected {args.expect_length}", file=sys.stderr)
        return 1
    return 0 if ok else 1


def cmd_corpus(args) -> int:
    """Run the chaos-correlated bug corpus: E1 bugs x seeded chaos
    cells through the recorded stack, each failure minimized; write or
    verify the committed corpus document."""
    from repro.debug.corpus import check_corpus, corpus_json, run_corpus

    doc = run_corpus(args.preset, seed=args.seed, log=print)
    for cell in doc["cells"]:
        outcome = cell["outcome"]
        sig = outcome["signature"]
        adversity = ", ".join(
            f"{k}={v:g}" for k, v in sorted(cell["adversity"].items())
        ) or "clean"
        min_note = ""
        if "minimized_length" in outcome:
            min_note = (f", minimized {outcome['minimized_length']} "
                        f"(trigger {cell['trigger_length']})")
        print(f"  {cell['bug']} [{cell['kind']}] x {adversity}: "
              f"{sig['kind']}/{sig['failure_kind'] or '-'} "
              f"policy={outcome['recovery_policy'] or '-'}"
              f"{min_note}")
    text = corpus_json(doc)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out} ({len(doc['cells'])} cells)")
    if args.check:
        ok, lines = check_corpus(doc, args.check)
        for line in lines:
            print(("OK   " if ok else "FAIL ") + line)
        return 0 if ok else 1
    return 0


def cmd_bug_study(args) -> int:
    """Replay a synthetic bug corpus and report the catastrophic rate."""
    from repro.faults import make_bug_corpus

    corpus = make_bug_corpus(n=args.count,
                             catastrophic_fraction=args.catastrophic,
                             seed=args.seed)
    by_kind = {}
    for bug in corpus:
        by_kind[bug.kind.value] = by_kind.get(bug.kind.value, 0) + 1
    print(f"corpus: {args.count} bugs, seed {args.seed}")
    for kind, count in sorted(by_kind.items()):
        print(f"  {kind:<18} {count}")
    catastrophic = sum(1 for b in corpus if b.is_catastrophic())
    deterministic = sum(1 for b in corpus if b.deterministic)
    print(f"catastrophic: {catastrophic}/{args.count} "
          f"({catastrophic / args.count:.0%}) -- paper reports 16%")
    print(f"deterministic: {deterministic}/{args.count}")
    return 0


def cmd_check_policy(args) -> int:
    """Parse a compromise-policy file; print the effective table."""
    from repro.core.crashpad.policy_lang import PolicyParseError, PolicyTable

    try:
        with open(args.file) as fh:
            table = PolicyTable.parse(fh.read())
    except (OSError, PolicyParseError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"ok: {len(table.rules)} rule(s)")
    print(table.render())
    for app, event in (("firewall", "PacketIn"), ("routing", "SwitchLeave"),
                       ("anything", "PacketIn")):
        print(f"  lookup({app}, {event}) -> "
              f"{table.lookup(app, event).value}")
    return 0


def cmd_show_topology(args) -> int:
    topo = _build_topology(args.topology, args.size)
    print(f"{topo.name}: {len(topo.switches)} switches, "
          f"{len(topo.hosts)} hosts, {len(topo.switch_links)} links")
    for a, b in topo.switch_links:
        print(f"  s{a} -- s{b}")
    for host in topo.hosts:
        print(f"  {host.name} ({host.ip}) @ s{host.dpid}")
    return 0


def cmd_bench(args) -> int:
    """Sustained-load harness: synthetic 10^5-10^6 host universes
    driven through the full sharded stack on the sim clock."""
    import dataclasses as _dc

    from repro.bench import PRESETS, check_report, run_scenario

    scenario = PRESETS[args.preset]
    overrides = {}
    for name in ("hosts", "rate", "sim_seconds", "warmup_seconds",
                 "shards", "churn_per_sec", "ceiling_mb",
                 "checkpoint_interval", "crash_at", "seed"):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    if overrides:
        scenario = _dc.replace(scenario, **overrides)
    print(f"bench {scenario.name}: {scenario.hosts:,} hosts, "
          f"rate {scenario.rate:g}/s, {scenario.sim_seconds:g}s sim, "
          f"K={scenario.shards}, codec={args.codec}, "
          f"interval={scenario.checkpoint_interval}, "
          f"ceiling {scenario.ceiling_mb:g} MB")
    report = run_scenario(scenario, codec=args.codec, log=print)
    results = report.results
    latency = results.get("latency_ms") or {}
    print(f"  events: {results['events_completed']:,} completed "
          f"({results['events_per_sim_sec']:,} /sim-s), "
          f"{results['events_dropped']} dropped")
    print("  latency ms: " + ", ".join(
        f"{k}={latency[k]:.3f}" for k in ("p50", "p99", "p99_9")
        if k in latency and latency[k] == latency[k]))
    bpe = results.get("bytes_per_event")
    print(f"  wire: {results['bytes_sent']:,} B sent"
          + (f", {bpe:.1f} B/event" if bpe else ""))
    ckpt = results.get("checkpoint") or {}
    if ckpt:
        print(f"  checkpoint: {ckpt.get('taken', 0):,} taken, "
              f"{ckpt.get('bytes_written', 0):,} B written, "
              f"{ckpt.get('encodes_skipped', 0):,} encodes skipped, "
              f"lag {ckpt.get('checkpoint_lag', 0)}")
    if scenario.crash_at > 0 or results.get("crashes"):
        print(f"  crashes: {results.get('crashes', 0)}, "
              f"recoveries: {results.get('recoveries', 0)}")
    print(f"  wall {report.environment['wall_seconds']:.1f}s, "
          f"peak RSS {report.environment['peak_rss_mb']:.0f} MB")
    if report.aborted:
        print(f"  ABORTED: {report.aborted}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {args.out}")
    if args.check:
        with open(args.check) as fh:
            doc = json.load(fh)
        runs = doc.get("runs", [doc])
        baseline = next(
            (run for run in runs
             if run.get("scenario", {}).get("name") == scenario.name
             and run.get("codec") == args.codec), None)
        if baseline is None:
            print(f"check: no baseline for ({scenario.name}, "
                  f"{args.codec}) in {args.check}", file=sys.stderr)
            return 1
        ok, lines = check_report(baseline, report,
                                 threshold=args.threshold)
        print(f"check vs {args.check} (budget {args.threshold:.0%}):")
        for line in lines:
            print(f"  {line}")
        if not ok:
            return 1
    return 0 if report.completed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LegoSDN reproduction command-line interface",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_topo_args(p):
        p.add_argument("--topology", choices=TOPOLOGIES, default="linear")
        p.add_argument("--size", type=int, default=3)
        p.add_argument("--seed", type=int, default=0)

    def add_flight_args(p):
        p.add_argument("--flight-records", "--flight-capacity",
                       dest="flight_capacity", type=_positive_int,
                       default=128, metavar="N",
                       help="flight-recorder ring size (default 128)")

    p_demo = sub.add_parser("demo", help=cmd_demo.__doc__)
    add_topo_args(p_demo)
    p_demo.set_defaults(func=cmd_demo)

    p_drill = sub.add_parser("drill", help=cmd_drill.__doc__)
    add_topo_args(p_drill)
    p_drill.add_argument("--runtime", choices=("legosdn", "monolithic"),
                         default="legosdn")
    p_drill.add_argument("--mode", choices=("netlog", "buffer"),
                         default="netlog")
    p_drill.add_argument("--apps", nargs="+",
                         default=["learning_switch", "monitor"])
    p_drill.add_argument("--policy", help="compromise-policy file")
    p_drill.add_argument("--duration", type=float, default=10.0)
    p_drill.add_argument("--rate", type=float, default=50.0)
    p_drill.add_argument("--report",
                         help="write a markdown incident report here "
                              "(legosdn runtime only)")
    p_drill.set_defaults(func=cmd_drill)

    p_repl = sub.add_parser("replicate", help=cmd_replicate.__doc__)
    add_topo_args(p_repl)
    add_flight_args(p_repl)
    p_repl.add_argument("--backups", type=_positive_int, default=1,
                        help="warm backup controllers (default 1)")
    p_repl.add_argument("--lease", type=float, default=0.2,
                        help="heartbeat lease timeout, sim seconds "
                             "(default 0.2)")
    p_repl.add_argument("--duration", type=float, default=6.0)
    p_repl.add_argument("--rate", type=float, default=50.0,
                        help="traffic rate, packets/s (default 50)")
    p_repl.add_argument("--churn", type=float, default=1.0,
                        help="host churn rate, events/s (default 1; 0 off)")
    p_repl.set_defaults(func=cmd_replicate)

    p_shard = sub.add_parser("shard", help=cmd_shard.__doc__)
    add_topo_args(p_shard)
    p_shard.add_argument("--shards", type=_positive_int, default=3,
                         help="primary shard count K (default 3)")
    p_shard.add_argument("--backups", type=_positive_int, default=1,
                         help="warm backups per shard (default 1)")
    p_shard.add_argument("--service-time", type=float, default=0.0,
                         help="per-event ingest service time, sim "
                              "seconds (default 0: infinitely fast)")
    p_shard.add_argument("--duration", type=float, default=6.0)
    p_shard.add_argument("--rate", type=float, default=50.0,
                         help="traffic rate, packets/s (default 50)")
    p_shard.add_argument("--churn", type=float, default=1.0,
                         help="host churn rate, events/s (default 1; 0 off)")
    p_shard.add_argument("--kill-shard", type=int, default=None,
                         metavar="K",
                         help="kill this shard's primary mid-run "
                              "(default: no fault)")
    p_shard.add_argument("--freshness", type=float, default=0.5,
                         help="quorum-read staleness bound, sim "
                              "seconds (default 0.5)")
    p_shard.set_defaults(func=cmd_shard)

    p_trace = sub.add_parser("trace", help=cmd_trace.__doc__)
    add_topo_args(p_trace)
    add_flight_args(p_trace)
    p_trace.add_argument("--no-crash", dest="crash", action="store_false",
                         help="skip the injected app crash (healthy trace)")
    p_trace.add_argument("--out", help="write the full trace here")
    p_trace.add_argument("--format", choices=("json", "prom"),
                         default="json",
                         help="output format for --out (default json)")
    p_trace.set_defaults(func=cmd_trace)
    trace_sub = p_trace.add_subparsers(dest="trace_cmd")
    p_diff = trace_sub.add_parser(
        "diff", help=cmd_trace_diff.__doc__)
    p_diff.add_argument("baseline", help="baseline trace JSON "
                        "(repro trace --out, or a span-diff capture)")
    p_diff.add_argument("candidate", help="candidate trace JSON")
    p_diff.add_argument("--span", default="appvisor.event",
                        help="span gated by --check-regression "
                             "(default appvisor.event)")
    p_diff.add_argument("--check-regression", type=float, default=None,
                        metavar="FRACTION",
                        help="exit non-zero if the --span median "
                             "regressed more than FRACTION (e.g. 0.2)")
    p_diff.set_defaults(func=cmd_trace_diff)

    def add_causal_args(p):
        add_topo_args(p)
        add_flight_args(p)
        p.add_argument("--in", dest="infile", default=None, metavar="FILE",
                       help="analyze a saved trace JSON instead of "
                            "running the built-in workload")
        p.add_argument("--loss", type=float, default=0.0,
                       help="chaos loss rate for the built-in workload "
                            "(default 0; E17 uses 0.3)")
        p.add_argument("--duration", type=float, default=4.0,
                       help="workload duration, sim seconds (default 4)")
        p.add_argument("--rate", type=float, default=50.0,
                       help="traffic rate, packets/s (default 50)")

    p_tree = trace_sub.add_parser("tree", help=cmd_trace_tree.__doc__)
    add_causal_args(p_tree)
    p_tree.add_argument("trace_id", nargs="?", type=int, default=None,
                        help="trace to render (omit to list traces)")
    p_tree.set_defaults(func=cmd_trace_tree)

    p_cp = trace_sub.add_parser("critical-path",
                                help=cmd_trace_critical_path.__doc__)
    add_causal_args(p_cp)
    p_cp.add_argument("--top", type=_positive_int, default=10,
                      help="attribution rows to print (default 10)")
    p_cp.set_defaults(func=cmd_trace_critical_path)

    p_serve = sub.add_parser("serve", help=cmd_serve.__doc__)
    add_topo_args(p_serve)
    add_flight_args(p_serve)
    p_serve.add_argument("--port", type=int, default=9464,
                         help="listen port (default 9464; 0 = ephemeral)")
    p_serve.add_argument("--linger", type=float, default=None,
                         help="serve for this many wall seconds then exit "
                              "(default: until Ctrl-C)")
    p_serve.set_defaults(func=cmd_serve)

    def _partition_spec(text):
        try:
            start, duration = (float(part) for part in text.split(":"))
        except ValueError:
            raise argparse.ArgumentTypeError(
                "expected START:DURATION, e.g. 1.0:0.5")
        return (start, duration)

    p_chaos = sub.add_parser("chaos", help=cmd_chaos.__doc__)
    add_topo_args(p_chaos)
    p_chaos.add_argument("--loss", type=float, default=0.2,
                         help="datagram loss probability (default 0.2)")
    p_chaos.add_argument("--burst", type=float, default=0.0,
                         help="burst-loss probability (default 0)")
    p_chaos.add_argument("--dup", type=float, default=0.0,
                         help="duplication probability (default 0)")
    p_chaos.add_argument("--reorder", type=float, default=0.0,
                         help="reorder probability (default 0)")
    p_chaos.add_argument("--corrupt", type=float, default=0.0,
                         help="bit-flip probability (default 0)")
    p_chaos.add_argument("--jitter", type=float, default=0.0,
                         help="extra delay jitter, sim seconds (default 0)")
    p_chaos.add_argument("--partition", type=_partition_spec, default=None,
                         metavar="START:DURATION",
                         help="black out the channel for a window, "
                              "e.g. 1.0:0.5")
    p_chaos.add_argument("--retry-budget", type=_positive_int, default=8,
                         help="retransmissions per datagram (default 8)")
    p_chaos.add_argument("--duration", type=float, default=5.0)
    p_chaos.add_argument("--rate", type=float, default=50.0,
                         help="traffic rate, packets/s (default 50)")
    p_chaos.add_argument("--sweep", type=lambda t: [
                             float(x) for x in t.split(",")],
                         default=None, metavar="L1,L2,...",
                         help="sweep these loss rates instead of --loss")
    p_chaos.add_argument("--slo", type=float, default=0.99,
                         help="reachability floor; exit 1 below it "
                              "(default 0.99)")
    p_chaos.set_defaults(func=cmd_chaos)

    p_byz = sub.add_parser("byzantine", help=cmd_byzantine.__doc__)
    add_topo_args(p_byz)
    p_byz.add_argument("--tamper", type=float, default=0.2,
                       help="per-frame tamper/digest-lie probability "
                            "for the compromised backup (default 0.2)")
    p_byz.add_argument("--sweep", type=lambda t: [
        float(x) for x in t.split(",")], default=None,
        metavar="R1,R2,...",
        help="sweep several tamper rates instead of one")
    p_byz.add_argument("--modes", type=lambda t: t.split(","),
                       default=["crash", "byzantine", "adaptive"],
                       metavar="M1,M2,...",
                       help="replication modes to cross with each rate "
                            "(default crash,byzantine,adaptive)")
    p_byz.add_argument("--backups", type=_positive_int, default=3,
                       help="warm backups (default 3: a 4-replica set "
                            "tolerates f=1)")
    p_byz.add_argument("--fault-start", type=float, default=2.0,
                       help="sim time the compromise activates "
                            "(default 2.0; honest before)")
    p_byz.add_argument("--duration", type=float, default=6.0)
    p_byz.add_argument("--rate", type=float, default=50.0,
                       help="traffic rate, packets/s (default 50)")
    p_byz.set_defaults(func=cmd_byzantine)

    p_min = sub.add_parser("minimize", help=cmd_minimize.__doc__)
    p_min.add_argument("--seed", type=int, default=0)
    p_min.add_argument("--loss", type=float, default=0.2,
                       help="chaos loss on the app channel during both "
                            "the recording and every replay probe "
                            "(default 0.2)")
    p_min.add_argument("--noise", type=_positive_int, default=4,
                       help="irrelevant events planted around the "
                            "causal three (default 4)")
    p_min.add_argument("--expect-length", type=_positive_int, default=None,
                       metavar="N",
                       help="exit non-zero unless the minimal sequence "
                            "has exactly N events (CI gate)")
    p_min.set_defaults(func=cmd_minimize)

    from repro.debug.corpus import CORPUS_PRESETS as _corpus_presets
    p_corpus = sub.add_parser("corpus", help=cmd_corpus.__doc__)
    p_corpus.add_argument("--preset", choices=sorted(_corpus_presets),
                          default="smoke")
    p_corpus.add_argument("--seed", type=int, default=0)
    p_corpus.add_argument("--out", default=None,
                          help="write the corpus document here")
    p_corpus.add_argument("--check", default=None, metavar="BASELINE",
                          help="byte-compare against a committed corpus "
                               "document (exit non-zero on drift)")
    p_corpus.set_defaults(func=cmd_corpus)

    p_bugs = sub.add_parser("bug-study", help=cmd_bug_study.__doc__)
    p_bugs.add_argument("--count", type=int, default=100)
    p_bugs.add_argument("--catastrophic", type=float, default=0.16)
    p_bugs.add_argument("--seed", type=int, default=0)
    p_bugs.set_defaults(func=cmd_bug_study)

    p_policy = sub.add_parser("check-policy", help=cmd_check_policy.__doc__)
    p_policy.add_argument("file")
    p_policy.set_defaults(func=cmd_check_policy)

    p_topo = sub.add_parser("show-topology", help=cmd_show_topology.__doc__)
    add_topo_args(p_topo)
    p_topo.set_defaults(func=cmd_show_topology)

    from repro.bench import CODECS as _bench_codecs
    from repro.bench import PRESETS as _bench_presets
    p_bench = sub.add_parser("bench", help=cmd_bench.__doc__)
    p_bench.add_argument("--preset", choices=sorted(_bench_presets),
                         default="smoke")
    p_bench.add_argument("--codec", choices=_bench_codecs,
                         default="packed")
    p_bench.add_argument("--hosts", type=_positive_int, default=None)
    p_bench.add_argument("--rate", type=float, default=None,
                         help="injected flows per simulated second")
    p_bench.add_argument("--sim-seconds", type=float, default=None,
                         dest="sim_seconds")
    p_bench.add_argument("--warmup-seconds", type=float, default=None,
                         dest="warmup_seconds")
    p_bench.add_argument("--shards", type=_positive_int, default=None)
    p_bench.add_argument("--churn", type=float, default=None,
                         dest="churn_per_sec",
                         help="host re-addressings per simulated second")
    p_bench.add_argument("--ceiling-mb", type=float, default=None,
                         dest="ceiling_mb",
                         help="peak-RSS abort ceiling in MB")
    p_bench.add_argument("--checkpoint-interval", type=_positive_int,
                         default=None, dest="checkpoint_interval",
                         help="events between checkpoints (recovery "
                              "replays the NetLog tail); 1 = per-event")
    p_bench.add_argument("--crash-at", type=float, default=None,
                         dest="crash_at",
                         help="inject one app-crashing packet this many "
                              "sim seconds into the measured window "
                              "(0 = no crash)")
    p_bench.add_argument("--seed", type=int, default=None)
    p_bench.add_argument("--out", default=None,
                         help="write the full report JSON here")
    p_bench.add_argument("--check", default=None, metavar="BASELINE",
                         help="gate against a committed baseline doc "
                              "(exit nonzero on regression)")
    p_bench.add_argument("--threshold", type=float, default=0.15,
                         help="fractional regression budget for --check")
    p_bench.set_defaults(func=cmd_bench)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
