"""A live health watchdog over the telemetry stream.

The :class:`HealthWatchdog` is the stack's always-on observer: it runs
a periodic sweep on the simulated clock and turns the raw telemetry
feed (spans, counters, ground-truth snapshots) into **typed anomaly
events** plus a single rolling **health score** -- the numbers an
operator's ``/healthz`` endpoint and the experiment harnesses read.

Per sweep it:

- folds freshly finished spans into rolling per-name windows and
  maintains p50/p95/p99 over the last ``window`` seconds;
- compares each name's current p95 against an exponentially weighted
  baseline of its own history and flags a sustained blow-up as a
  ``latency-regression``;
- watches the ``channel.retransmits`` counter's rate and flags a
  ``retransmit-storm`` when retries per second cross the threshold
  (the signature of a lossy proxy<->stub or replication channel);
- checks every finished ``crashpad.recovery`` span against the
  recovery SLO and flags ``recovery-slo-burn`` when a recovery window
  exceeded it;
- optionally runs an :class:`~repro.invariants.checker.InvariantChecker`
  sweep over a fresh :class:`~repro.invariants.graph.NetSnapshot`
  (``snapshot_provider``) and flags each new ``invariant-violation``
  (deduplicated, so a persistent loop is one anomaly, not one per
  sweep).

Every anomaly is recorded as a ``watchdog.<kind>`` trace event (which
lands in the FlightRecorder, so crash tickets carry the anomaly
timeline) and counted in the ``watchdog.anomalies`` metric.  The
health score starts at 1.0 and subtracts each anomaly's severity with
an exponential time decay, so a burst of trouble drops the score
sharply and a quiet network heals back toward 1.0.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple


@dataclass
class Anomaly:
    """One typed finding from a watchdog sweep."""

    kind: str
    at: float
    severity: float
    detail: str
    tags: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "at": self.at,
            "severity": self.severity,
            "detail": self.detail,
            "tags": dict(self.tags),
        }


def _percentile(ordered: List[float], p: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1,
                      int(round(p / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class HealthWatchdog:
    """Periodic telemetry sweeps -> anomalies + a rolling health score."""

    #: Severity charged per anomaly kind (score subtraction at t=0).
    SEVERITIES = {
        "latency-regression": 0.15,
        "retransmit-storm": 0.25,
        "recovery-slo-burn": 0.3,
        "byzantine-divergence": 0.4,
        "invariant-violation": 0.5,
    }
    #: Exponential decay half-life for an anomaly's score impact (s).
    DECAY_HALF_LIFE = 5.0
    #: Retained anomalies (ring; the payload reports the newest).
    MAX_ANOMALIES = 256

    def __init__(self, telemetry, sim, interval: float = 0.25,
                 window: float = 2.0,
                 baseline_alpha: float = 0.2,
                 latency_factor: float = 3.0,
                 min_samples: int = 8,
                 retransmit_rate_threshold: float = 40.0,
                 recovery_slo: float = 0.25,
                 snapshot_provider: Optional[Callable[[], object]] = None,
                 probe_pairs=None,
                 critical_kinds: Tuple[str, ...] = ("loop",)):
        self.telemetry = telemetry
        self.sim = sim
        self.interval = interval
        self.window = window
        #: EWMA weight for folding a sweep's p95 into the baseline.
        self.baseline_alpha = baseline_alpha
        #: p95 must exceed ``latency_factor`` x baseline to regress.
        self.latency_factor = latency_factor
        #: Minimum samples in the window before a name is judged.
        self.min_samples = min_samples
        #: Retransmissions/second across all channels that count as a
        #: storm (E17's 30%-loss run produces hundreds).
        self.retransmit_rate_threshold = retransmit_rate_threshold
        #: Max tolerable crash-to-recovered window, seconds.
        self.recovery_slo = recovery_slo
        #: Zero-arg callable returning a fresh NetSnapshot (ground
        #: truth) for invariant sweeps; None disables them.
        self.snapshot_provider = snapshot_provider
        self.probe_pairs = probe_pairs
        self.critical_kinds = critical_kinds
        self.anomalies: Deque[Anomaly] = deque(maxlen=self.MAX_ANOMALIES)
        self.sweeps = 0
        #: span name -> deque of (end_time, duration) within window.
        self._windows: Dict[str, Deque[Tuple[float, float]]] = {}
        #: span name -> EWMA baseline of the windowed p95.
        self._baselines: Dict[str, float] = {}
        #: Names currently flagged as regressed (re-flag only after
        #: they recover -- one anomaly per episode, not per sweep).
        self._regressed: set = set()
        self._last_span_id = 0
        self._last_retransmits = 0
        self._last_sweep_at: Optional[float] = None
        self._seen_violations: set = set()
        self._stop = sim.every(interval, self.sweep)

    def stop(self) -> None:
        self._stop()

    # -- sweeping ----------------------------------------------------------

    def sweep(self) -> None:
        """One watchdog pass; runs every ``interval`` on the sim clock."""
        now = self.sim.now
        self.sweeps += 1
        fresh = self._ingest_new_spans()
        self._trim_windows(now)
        self._check_latency(now)
        self._check_retransmits(now)
        self._check_recoveries(fresh, now)
        self._check_invariants(now)
        self._last_sweep_at = now

    def _ingest_new_spans(self) -> List:
        """Spans finished since the last sweep (ring-buffer cursor).

        Span ids are monotonic and the tracer appends in completion
        order, so everything newer than the cursor sits at the tail.
        """
        tracer = self.telemetry.tracer
        if not getattr(tracer, "enabled", False):
            return []
        fresh: List = []
        for record in reversed(tracer.spans):
            if record.span_id <= self._last_span_id:
                break
            fresh.append(record)
        if fresh:
            self._last_span_id = fresh[0].span_id
            fresh.reverse()
        for record in fresh:
            window = self._windows.get(record.name)
            if window is None:
                window = self._windows[record.name] = deque()
            window.append((record.end, record.duration))
        return fresh

    def _trim_windows(self, now: float) -> None:
        cutoff = now - self.window
        for window in self._windows.values():
            while window and window[0][0] < cutoff:
                window.popleft()

    def _check_latency(self, now: float) -> None:
        for name, window in self._windows.items():
            if len(window) < self.min_samples:
                continue
            ordered = sorted(d for _, d in window)
            p95 = _percentile(ordered, 95)
            baseline = self._baselines.get(name)
            if baseline is None:
                self._baselines[name] = p95
                continue
            if (p95 > baseline * self.latency_factor
                    and p95 > 1e-9 and name not in self._regressed):
                self._regressed.add(name)
                self._emit(Anomaly(
                    kind="latency-regression", at=now,
                    severity=self.SEVERITIES["latency-regression"],
                    detail=(f"{name} p95 {p95 * 1000:.2f} ms vs baseline "
                            f"{baseline * 1000:.2f} ms "
                            f"(x{p95 / max(baseline, 1e-12):.1f})"),
                    tags={"span": name, "p95": p95, "baseline": baseline},
                ))
            elif p95 <= baseline * self.latency_factor:
                self._regressed.discard(name)
            # Baseline learns slowly, and only from non-anomalous
            # sweeps -- a storm must not teach the watchdog that storm
            # latency is normal.
            if name not in self._regressed:
                self._baselines[name] = (
                    (1 - self.baseline_alpha) * baseline
                    + self.baseline_alpha * p95)

    def _check_retransmits(self, now: float) -> None:
        total = self.telemetry.metrics.counters.get("channel.retransmits", 0)
        delta = total - self._last_retransmits
        self._last_retransmits = total
        if self._last_sweep_at is None:
            return
        elapsed = max(now - self._last_sweep_at, 1e-9)
        rate = delta / elapsed
        if rate > self.retransmit_rate_threshold:
            self._emit(Anomaly(
                kind="retransmit-storm", at=now,
                severity=self.SEVERITIES["retransmit-storm"],
                detail=(f"{rate:.0f} retransmits/s over the last "
                        f"{elapsed * 1000:.0f} ms "
                        f"(threshold {self.retransmit_rate_threshold:.0f}/s)"),
                tags={"rate": rate, "delta": delta},
            ))

    def _check_recoveries(self, fresh: List, now: float) -> None:
        for record in fresh:
            if record.name != "crashpad.recovery":
                continue
            if record.duration > self.recovery_slo:
                self._emit(Anomaly(
                    kind="recovery-slo-burn", at=now,
                    severity=self.SEVERITIES["recovery-slo-burn"],
                    detail=(f"recovery of {record.tags.get('app', '?')} took "
                            f"{record.duration * 1000:.1f} ms "
                            f"(SLO {self.recovery_slo * 1000:.0f} ms)"),
                    tags={"app": record.tags.get("app"),
                          "duration": record.duration,
                          "trace": record.trace_id},
                ))

    def _check_invariants(self, now: float) -> None:
        if self.snapshot_provider is None:
            return
        from repro.invariants.checker import InvariantChecker

        snapshot = self.snapshot_provider()
        checker = InvariantChecker(snapshot,
                                   critical_kinds=self.critical_kinds)
        violations = checker.check_all(self.probe_pairs)
        for violation in violations:
            key = (violation.kind,
                   violation.probe.pair if violation.probe is not None
                   else violation.detail)
            if key in self._seen_violations:
                continue
            self._seen_violations.add(key)
            severity = self.SEVERITIES["invariant-violation"]
            if violation.critical:
                severity = min(1.0, severity * 2)
            self._emit(Anomaly(
                kind="invariant-violation", at=now, severity=severity,
                detail=str(violation),
                tags={"invariant": violation.kind,
                      "critical": violation.critical},
            ))
        if not violations:
            # All clear: a future reappearance is a new episode.
            self._seen_violations.clear()

    def _emit(self, anomaly: Anomaly) -> None:
        self.anomalies.append(anomaly)
        if self.telemetry.enabled:
            self.telemetry.tracer.event(
                f"watchdog.{anomaly.kind}",
                severity=anomaly.severity, detail=anomaly.detail,
                **{k: v for k, v in anomaly.tags.items()
                   if isinstance(v, (str, int, float, bool, type(None)))})
        self.telemetry.metrics.inc("watchdog.anomalies")
        self.telemetry.metrics.inc(f"watchdog.{anomaly.kind}")
        # Invariant violations the sweep finds escalate every guarded
        # replica set's mode policy (byzantine-divergence reports come
        # *from* a set, which has already escalated itself).
        if anomaly.kind == "invariant-violation":
            for replicas in getattr(self, "_guarded_replicas", ()):
                replicas.mode_policy.note_anomaly(
                    self.sim.now, replicas.epoch,
                    anomaly.kind, anomaly.detail)

    # -- reporting ---------------------------------------------------------

    def health_score(self, now: Optional[float] = None) -> float:
        """1.0 = healthy; anomalies subtract severity, decaying in time."""
        if now is None:
            now = self.sim.now
        burden = 0.0
        for anomaly in self.anomalies:
            age = max(0.0, now - anomaly.at)
            burden += anomaly.severity * (0.5 ** (age / self.DECAY_HALF_LIFE))
        return max(0.0, min(1.0, 1.0 - burden))

    def note_byzantine(self, detail: str, suspicion: str = "divergence",
                       **tags) -> None:
        """Externally reported Byzantine evidence (from the replica
        set's signature checks, digest comparisons, and vote counting).

        Unlike the sweep checks, these are push-style: the replication
        layer sees a lying replica the instant a vote conflicts, so it
        reports in line rather than waiting for the next sweep.  The
        anomaly scores on ``/healthz`` like any other and -- through
        :meth:`guard_replication` -- escalates the guarded set's mode
        policy.
        """
        self._emit(Anomaly(
            kind="byzantine-divergence", at=self.sim.now,
            severity=self.SEVERITIES["byzantine-divergence"],
            detail=detail,
            tags={"suspicion": suspicion, **tags},
        ))

    def guard_replication(self, replicas) -> None:
        """Wire a :class:`~repro.replication.replicaset.ReplicaSet`'s
        Byzantine suspicions through this watchdog (the
        ``guard_checkpoints`` idiom for the replication layer): the
        set's reports land here as ``byzantine-divergence`` anomalies,
        and watchdog-observed invariant violations escalate the set's
        mode policy in return -- the full adaptive loop of the paper's
        divergence-triggered mode switch.
        """
        replicas.watchdog = self
        self._guarded_replicas = getattr(self, "_guarded_replicas", [])
        self._guarded_replicas.append(replicas)

    def guard_checkpoints(self, runtime) -> int:
        """Wire this watchdog's health score into every app stub's
        adaptive checkpoint policy: while the score is depressed, the
        policy tightens to per-event durable checkpoints, buying the
        shortest possible recovery tail exactly when crashes are
        likeliest.  Returns how many stubs were wired.
        """
        wired = 0
        for stub in runtime.stubs.values():
            stub.policy.attach_health(self.health_score)
            wired += 1
        return wired

    @staticmethod
    def status_of(score: float) -> str:
        if score >= 0.9:
            return "healthy"
        if score >= 0.5:
            return "degraded"
        return "critical"

    def rolling_percentiles(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for name, window in sorted(self._windows.items()):
            if not window:
                continue
            ordered = sorted(d for _, d in window)
            out[name] = {
                "count": len(ordered),
                "p50": _percentile(ordered, 50),
                "p95": _percentile(ordered, 95),
                "p99": _percentile(ordered, 99),
            }
        return out

    def anomaly_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for anomaly in self.anomalies:
            counts[anomaly.kind] = counts.get(anomaly.kind, 0) + 1
        return counts

    def healthz_payload(self, recent: int = 20) -> Dict[str, object]:
        """The ``/healthz`` detail document."""
        score = self.health_score()
        newest = list(self.anomalies)[-recent:]
        return {
            "score": round(score, 4),
            "status": self.status_of(score),
            "sim_time": self.sim.now,
            "sweeps": self.sweeps,
            "anomaly_total": len(self.anomalies),
            "anomaly_counts": self.anomaly_counts(),
            "anomalies": [a.to_dict() for a in reversed(newest)],
            "rolling": self.rolling_percentiles(),
        }
