"""Tests for the rendezvous-hash shard router: determinism, pins, and
the minimal-movement property that makes rebalances cheap."""

import pytest

from repro.shard import ShardRouter


class TestPlacement:
    def test_deterministic_across_instances(self):
        a = ShardRouter(4, seed=7)
        b = ShardRouter(4, seed=7)
        for dpid in range(1, 200):
            assert a.shard_of(dpid) == b.shard_of(dpid)

    def test_seed_changes_placement(self):
        a = ShardRouter(4, seed=0)
        b = ShardRouter(4, seed=1)
        assert any(a.shard_of(d) != b.shard_of(d) for d in range(1, 200))

    def test_every_shard_gets_work(self):
        router = ShardRouter(4, seed=0)
        parts = router.partition(range(1, 101))
        assert sorted(parts) == [0, 1, 2, 3]
        assert all(parts[s] for s in parts), "a shard got nothing"
        assert sorted(d for ds in parts.values() for d in ds) == \
            list(range(1, 101))

    def test_single_shard_owns_everything(self):
        router = ShardRouter(1, seed=0)
        assert all(router.shard_of(d) == 0 for d in range(1, 50))

    def test_needs_a_shard(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestMinimalMovement:
    def test_remove_only_remaps_the_removed_shards_dpids(self):
        router = ShardRouter(4, seed=3)
        dpids = list(range(1, 201))
        before = {d: router.shard_of(d) for d in dpids}
        router.remove_shard(2)
        for dpid in dpids:
            if before[dpid] != 2:
                assert router.shard_of(dpid) == before[dpid], \
                    f"dpid {dpid} moved though shard 2 never owned it"
            else:
                assert router.shard_of(dpid) != 2

    def test_add_back_restores_original_placement(self):
        router = ShardRouter(4, seed=3)
        dpids = list(range(1, 201))
        before = {d: router.shard_of(d) for d in dpids}
        router.remove_shard(2)
        router.add_shard(2)
        assert {d: router.shard_of(d) for d in dpids} == before

    def test_moved_by_previews_without_mutating(self):
        router = ShardRouter(4, seed=3)
        dpids = list(range(1, 101))
        before = {d: router.shard_of(d) for d in dpids}
        moved = router.moved_by(lambda r: r.remove_shard(1), dpids)
        assert moved == [d for d in dpids if before[d] == 1]
        assert {d: router.shard_of(d) for d in dpids} == before
        assert router.active == [0, 1, 2, 3]

    def test_cannot_remove_last_shard(self):
        router = ShardRouter(1)
        with pytest.raises(ValueError):
            router.remove_shard(0)


class TestPins:
    def test_pin_overrides_hash(self):
        router = ShardRouter(4, seed=0)
        natural = router.shard_of(42)
        target = (natural + 1) % 4
        router.pin(42, target)
        assert router.shard_of(42) == target
        router.unpin(42)
        assert router.shard_of(42) == natural

    def test_pin_to_departed_shard_falls_back_to_hash(self):
        router = ShardRouter(4, seed=0)
        router.pin(42, 3)
        router.remove_shard(3)
        assert router.shard_of(42) in (0, 1, 2)

    def test_ctor_pin_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(2, pins={5: 7})

    def test_partition_respects_pins(self):
        router = ShardRouter(3, seed=0, pins={1: 2, 2: 2, 3: 2})
        parts = router.partition([1, 2, 3])
        assert parts[2] == [1, 2, 3]
        assert parts[0] == [] and parts[1] == []
