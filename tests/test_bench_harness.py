"""The sustained-load harness: determinism, the memory ceiling, and
the regression gate.

Uses a deliberately tiny scenario (hundreds of hosts, ~2 sim seconds)
so the full stack -- coordinator, replication, AppVisor, codec -- runs
end to end in test time.
"""

import json

import pytest

from repro.bench import (
    PRESETS,
    BenchScenario,
    HostUniverse,
    StreamingHistogram,
    TrafficMix,
    check_report,
    run_scenario,
)
from repro.cli import main as cli_main

TINY = BenchScenario(
    name="tiny", hosts=200, rate=20.0, sim_seconds=2.0,
    warmup_seconds=0.5, shards=1, tree_fanout=2, churn_per_sec=1.0,
    ceiling_mb=4096.0, chunk_seconds=0.25, seed=3,
)


# -- the run loop -----------------------------------------------------

def test_tiny_run_produces_a_complete_report():
    report = run_scenario(TINY, codec="packed")
    assert report.completed and report.aborted is None
    results = report.results
    assert results["events_completed"] > 0
    assert results["events_per_sim_sec"] > 0
    assert results["bytes_sent"] > 0
    assert results["bytes_per_event"] > 0
    assert results["latency_ms"]["p99"] >= results["latency_ms"]["p50"]
    assert results["checkpoint"]["taken"] > 0
    assert results["checkpoint"]["codec"] == "schema"
    assert report.environment["peak_rss_mb"] > 0


def test_named_codec_run_uses_pickle_checkpoints_and_more_bytes():
    packed = run_scenario(TINY, codec="packed")
    named = run_scenario(TINY, codec="named")
    assert named.results["checkpoint"]["codec"] == "pickle"
    assert packed.results["checkpoint"]["codec"] == "schema"
    # The headline wire effect: interned schemas shrink bytes/event.
    assert packed.results["bytes_per_event"] < named.results["bytes_per_event"]


def test_seeded_runs_are_byte_identical():
    first = run_scenario(TINY, codec="packed")
    second = run_scenario(TINY, codec="packed")
    assert first.deterministic_json() == second.deterministic_json()


def test_memory_ceiling_aborts_cleanly_with_partial_report():
    """A probe that crosses the ceiling mid-run stops injection and
    still returns a structured (partial) report."""
    readings = iter([10.0] * 3)

    def probe():
        return next(readings, 999.0)     # blows past ceiling_mb=50

    scenario = BenchScenario(
        name="tiny-ceiling", hosts=200, rate=20.0, sim_seconds=5.0,
        warmup_seconds=0.5, tree_fanout=2, ceiling_mb=50.0,
        chunk_seconds=0.25, seed=3)
    report = run_scenario(scenario, codec="packed", memory_probe=probe)
    assert report.aborted == "memory-ceiling"
    assert not report.completed
    # Partial results are still structurally complete.
    assert report.results["sim_seconds_measured"] < scenario.sim_seconds
    assert "latency_ms" in report.results
    assert report.deterministic_dict()["aborted"] == "memory-ceiling"


def test_unknown_codec_rejected():
    with pytest.raises(ValueError):
        run_scenario(TINY, codec="json")


# -- the regression gate ----------------------------------------------

def _baseline_doc(report):
    return {"runs": [report.to_dict()]}


def test_check_passes_against_itself():
    report = run_scenario(TINY, codec="packed")
    ok, lines = check_report(report.to_dict(), report, threshold=0.15)
    assert ok, lines


def test_check_fails_on_planted_regression():
    report = run_scenario(TINY, codec="packed")
    baseline = report.to_dict()
    # Plant a baseline that was twice as fast and half the bytes: the
    # fresh run is then a >threshold regression on both axes.
    baseline["results"] = dict(baseline["results"])
    baseline["results"]["events_per_sim_sec"] = (
        baseline["results"]["events_per_sim_sec"] * 2)
    baseline["results"]["bytes_per_event"] = (
        baseline["results"]["bytes_per_event"] / 2)
    ok, lines = check_report(baseline, report, threshold=0.15)
    assert not ok
    assert any(line.startswith("FAIL") for line in lines)


def test_check_fails_on_aborted_run():
    report = run_scenario(TINY, codec="packed")
    baseline = report.to_dict()
    report.aborted = "memory-ceiling"
    ok, lines = check_report(baseline, report)
    assert not ok


# -- the CLI ----------------------------------------------------------

def _bench_args(extra):
    return ["bench", "--preset", "smoke", "--hosts", "200",
            "--rate", "20", "--sim-seconds", "2",
            "--warmup-seconds", "0.5", "--seed", "3"] + extra


def test_cli_bench_writes_report(tmp_path, capsys):
    out = tmp_path / "report.json"
    rc = cli_main(_bench_args(["--out", str(out)]))
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["completed"] is True
    assert doc["results"]["events_completed"] > 0
    assert "B/event" in capsys.readouterr().out


def test_cli_bench_check_exits_nonzero_on_regression(tmp_path, capsys):
    out = tmp_path / "report.json"
    assert cli_main(_bench_args(["--out", str(out)])) == 0
    doc = json.loads(out.read_text())

    # Same baseline: the gate passes.
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"runs": [doc]}))
    assert cli_main(_bench_args(["--check", str(baseline)])) == 0

    # Planted regression: nonzero exit.
    planted = dict(doc, results=dict(
        doc["results"],
        events_per_sim_sec=doc["results"]["events_per_sim_sec"] * 2))
    baseline.write_text(json.dumps({"runs": [planted]}))
    assert cli_main(_bench_args(["--check", str(baseline),
                                 "--threshold", "0.1"])) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_bench_check_missing_baseline_entry(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"runs": []}))
    assert cli_main(_bench_args(["--check", str(baseline)])) == 1


# -- presets ----------------------------------------------------------

def test_presets_cover_e19_matrix():
    names = set(PRESETS)
    assert {"smoke", "e19-100k", "e19-100k-k4",
            "e19-1m", "e19-1m-k4"} <= names
    assert PRESETS["e19-1m"].hosts == 1_000_000
    assert PRESETS["e19-100k-k4"].shards == 4


# -- building blocks --------------------------------------------------

def test_streaming_histogram_quantiles_bounded_memory():
    hist = StreamingHistogram()
    for i in range(10_000):
        hist.add(0.001 * (1 + i % 100))
    assert hist.count == 10_000
    assert hist.quantile(0.5) <= hist.quantile(0.99) <= hist.quantile(1.0)
    # Memory is the bucket array, not the samples.
    assert len(hist.counts) < 200
    summary = hist.summary()
    assert summary["count"] == 10_000
    assert summary["p50"] > 0


def test_streaming_histogram_merge():
    a, b = StreamingHistogram(), StreamingHistogram()
    for v in (0.001, 0.002, 0.004):
        a.add(v)
    for v in (0.008, 0.016):
        b.add(v)
    a.merge(b)
    assert a.count == 5
    assert a.max == 0.016


def test_host_universe_is_o1_and_deterministic():
    universe = HostUniverse(1_000_000, dpids=[1, 2, 3, 4, 5], seed=7)
    host = universe.host(123_456)
    again = universe.host(123_456)
    assert host == again
    assert host.dpid in (1, 2, 3, 4, 5)
    assert universe.dpid_of(123_456) == host.dpid
    # Churn changes the MAC but not the location.
    moved = universe.host(123_456, generation=3)
    assert moved.mac != host.mac
    assert moved.dpid == host.dpid and moved.port == host.port


def test_traffic_mix_hotspot_and_churn():
    universe = HostUniverse(10_000, dpids=[1, 2, 3], seed=1)
    mix = TrafficMix(universe, seed=2, hot_fraction=0.5, hot_set=4,
                     churn_per_sec=10.0)
    hot = set(mix._hot)
    draws = [mix.sample() for _ in range(400)]
    hot_hits = sum(1 for _, dst in draws if dst.idx in hot)
    assert hot_hits > 100                 # ~50% aim at 4 hot hosts
    assert all(src.idx != dst.idx for src, dst in draws)
    mix.advance(5.0)
    assert mix.churned == 50
