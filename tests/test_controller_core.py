"""Unit tests for the controller core: dispatch, crash, reboot."""

import pytest

from repro.controller.api import Command
from repro.controller.core import Controller
from repro.controller.events import SwitchJoin, SwitchLeave
from repro.network.net import Network
from repro.network.simulator import Simulator
from repro.network.topology import linear_topology
from repro.openflow.messages import Hello, PacketIn


class Recorder:
    """A listener that records what it sees."""

    def __init__(self, command=None, raises=None):
        self.seen = []
        self.command = command
        self.raises = raises

    def __call__(self, event):
        self.seen.append(event)
        if self.raises is not None:
            raise self.raises
        return self.command


@pytest.fixture
def controller():
    return Controller(Simulator(), discovery_interval=1000)  # discovery off


class TestListeners:
    def test_dispatch_by_type_name(self, controller):
        wants_hello = Recorder()
        wants_join = Recorder()
        controller.register_listener("a", ("Hello",), wants_hello)
        controller.register_listener("b", ("SwitchJoin",), wants_join)
        controller.dispatch(Hello())
        assert len(wants_hello.seen) == 1
        assert wants_join.seen == []

    def test_registration_order_preserved(self, controller):
        order = []
        controller.register_listener("first", ("Hello",),
                                     lambda e: order.append("first"))
        controller.register_listener("second", ("Hello",),
                                     lambda e: order.append("second"))
        controller.dispatch(Hello())
        assert order == ["first", "second"]

    def test_stop_halts_chain(self, controller):
        stopper = Recorder(command=Command.STOP)
        after = Recorder()
        controller.register_listener("stopper", ("Hello",), stopper)
        controller.register_listener("after", ("Hello",), after)
        controller.dispatch(Hello())
        assert after.seen == []

    def test_duplicate_name_rejected(self, controller):
        controller.register_listener("x", ("Hello",), lambda e: None)
        with pytest.raises(ValueError):
            controller.register_listener("x", ("Hello",), lambda e: None)

    def test_unregister(self, controller):
        r = Recorder()
        controller.register_listener("x", ("Hello",), r)
        assert controller.unregister_listener("x")
        assert not controller.unregister_listener("x")
        controller.dispatch(Hello())
        assert r.seen == []


class TestFateSharing:
    """The crash semantics the paper attacks: listener exception kills all."""

    def test_listener_exception_crashes_controller(self, controller):
        controller.register_listener("buggy", ("Hello",),
                                     Recorder(raises=RuntimeError("boom")))
        controller.dispatch(Hello())
        assert controller.crashed
        assert controller.crash_records[0].culprit == "buggy"
        assert "boom" in controller.crash_records[0].exception

    def test_crash_stops_dispatch_to_later_listeners(self, controller):
        after = Recorder()
        controller.register_listener("buggy", ("Hello",),
                                     Recorder(raises=RuntimeError("x")))
        controller.register_listener("after", ("Hello",), after)
        controller.dispatch(Hello())
        assert after.seen == []

    def test_crashed_controller_ignores_messages(self, controller):
        r = Recorder()
        controller.register_listener("r", ("Hello",), r)
        controller.crash(RuntimeError("dead"), culprit="test")
        controller.dispatch(Hello())
        controller.handle_switch_message(1, Hello())
        assert r.seen == []
        assert not controller.send_to_switch(1, Hello())

    def test_crash_callbacks_invoked(self, controller):
        calls = []
        controller.crash_callbacks.append(lambda exc, culprit: calls.append(culprit))
        controller.crash(RuntimeError("x"), culprit="app-z")
        assert calls == ["app-z"]

    def test_crash_idempotent(self, controller):
        controller.crash(RuntimeError("1"), culprit="a")
        controller.crash(RuntimeError("2"), culprit="b")
        assert len(controller.crash_records) == 1

    def test_traceback_captured(self, controller):
        def boom(event):
            raise ValueError("specific detail")

        controller.register_listener("b", ("Hello",), boom)
        controller.dispatch(Hello())
        assert "specific detail" in controller.crash_records[0].traceback_text


class TestRebootAndUptime:
    def test_reboot_restores_dispatch(self):
        net = Network(linear_topology(2, 1), seed=0)
        net.start()
        net.run_for(1.0)
        r = Recorder()
        net.controller.register_listener("r", ("SwitchJoin",), r)
        net.controller.crash(RuntimeError("x"), culprit="t")
        net.run_for(0.5)
        net.controller.reboot()
        # reboot re-announces connected switches
        assert len([e for e in r.seen if isinstance(e, SwitchJoin)]) == 2

    def test_uptime_fraction_accounts_downtime(self):
        net = Network(linear_topology(2, 1), seed=0)
        net.start()
        net.run_for(1.0)
        net.controller.crash(RuntimeError("x"), culprit="t")
        net.run_for(1.0)
        net.controller.reboot()
        net.run_for(2.0)
        frac = net.controller.uptime_fraction(0.0, 4.0)
        assert frac == pytest.approx(0.75, abs=0.01)

    def test_uptime_still_down(self):
        net = Network(linear_topology(2, 1), seed=0)
        net.start()
        net.run_for(1.0)
        net.controller.crash(RuntimeError("x"), culprit="t")
        net.run_for(3.0)
        frac = net.controller.uptime_fraction(0.0, 4.0)
        assert frac == pytest.approx(0.25, abs=0.01)

    def test_no_crashes_full_uptime(self, controller):
        assert controller.uptime_fraction(0.0, 10.0) == 1.0

    def test_overlapping_crash_windows_not_double_counted(self, controller):
        # Two crash records sharing one reboot: both [crash, reboot)
        # windows cover [2, 5); the shared downtime must count once.
        from repro.controller.core import CrashRecord

        controller.crash_records.append(
            CrashRecord(time=1.0, culprit="a", exception="X"))
        controller.crash_records.append(
            CrashRecord(time=2.0, culprit="b", exception="Y"))
        controller.reboot_times.append(5.0)
        # down [1, 5) merged => 4s of a 10s window
        assert controller.uptime_fraction(0.0, 10.0) == pytest.approx(0.6)

    def test_unrecovered_crashes_merge_to_window_end(self, controller):
        from repro.controller.core import CrashRecord

        controller.crash_records.append(
            CrashRecord(time=2.0, culprit="a", exception="X"))
        controller.crash_records.append(
            CrashRecord(time=6.0, culprit="b", exception="Y"))
        # no reboot: both windows run to window_end and overlap
        assert controller.uptime_fraction(0.0, 10.0) == pytest.approx(0.2)

    def test_disjoint_crash_windows_still_sum(self, controller):
        from repro.controller.core import CrashRecord

        controller.crash_records.append(
            CrashRecord(time=1.0, culprit="a", exception="X"))
        controller.reboot_times.append(2.0)
        controller.crash_records.append(
            CrashRecord(time=5.0, culprit="b", exception="Y"))
        controller.reboot_times.append(7.0)
        # down [1, 2) + [5, 7) = 3s of 10s
        assert controller.uptime_fraction(0.0, 10.0) == pytest.approx(0.7)


class TestSwitchLifecycle:
    def test_switch_leave_event_on_disconnect(self):
        net = Network(linear_topology(2, 1), seed=0)
        r = Recorder()
        net.controller.register_listener("r", ("SwitchLeave",), r)
        net.start()
        net.run_for(0.5)
        net.switch_down(1)
        assert any(isinstance(e, SwitchLeave) and e.dpid == 1 for e in r.seen)

    def test_duplicate_dpid_rejected(self):
        net = Network(linear_topology(2, 1), seed=0)
        net.start()
        with pytest.raises(ValueError):
            net.controller.connect_switch(net.switch(1))
