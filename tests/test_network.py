"""Integration tests for the Network facade (no SDN apps)."""

import pytest

from repro.apps import Flooder, LearningSwitch
from repro.controller.monolithic import MonolithicRuntime
from repro.network.net import Network
from repro.network.topology import linear_topology, ring_topology


class TestConstruction:
    def test_ports_allocated_deterministically(self):
        net = Network(linear_topology(3, 1), seed=0)
        # s1: trunk to s2 on port 1, host on port 2
        assert set(net.switch(1).ports) == {1, 2}
        # s2: trunks on ports 1,2, host on 3
        assert set(net.switch(2).ports) == {1, 2, 3}

    def test_link_between(self):
        net = Network(linear_topology(3, 1), seed=0)
        link = net.link_between(2, 1)
        assert link is net.link_between(1, 2)

    def test_hosts_materialised(self):
        net = Network(linear_topology(2, 2), seed=0)
        assert len(net.hosts) == 4
        assert net.host("h1").ip == "10.0.0.1"


class TestDiscovery:
    def test_lldp_discovers_all_links(self):
        net = Network(ring_topology(4, 1), seed=0)
        net.start()
        net.run_for(2.0)
        view = net.controller.topology.view()
        assert len(view.links) == 4
        assert view.switches == (1, 2, 3, 4)

    def test_link_down_removes_from_view(self):
        net = Network(linear_topology(3, 1), seed=0)
        net.start()
        net.run_for(1.5)
        net.link_down(1, 2)
        net.run_for(0.5)
        view = net.controller.topology.view()
        assert len(view.links) == 1

    def test_link_up_rediscovered(self):
        net = Network(linear_topology(3, 1), seed=0)
        net.start()
        net.run_for(1.5)
        net.link_down(1, 2)
        net.run_for(0.5)
        net.link_up(1, 2)
        net.run_for(1.5)
        assert len(net.controller.topology.view().links) == 2


class TestFailures:
    def test_switch_down_fails_links_and_channel(self):
        net = Network(linear_topology(3, 1), seed=0)
        net.start()
        net.run_for(1.0)
        net.switch_down(2)
        net.run_for(0.5)
        assert not net.switch(2).up
        assert not net.link_between(1, 2).up
        view = net.controller.topology.view()
        assert 2 not in view.switches

    def test_switch_up_restores(self):
        net = Network(linear_topology(3, 1), seed=0)
        net.start()
        net.run_for(1.0)
        net.switch_down(2)
        net.run_for(0.5)
        net.switch_up(2)
        net.run_for(2.0)
        view = net.controller.topology.view()
        assert 2 in view.switches
        assert len(view.links) == 2


class TestMeasurement:
    def test_ping_without_apps_fails(self):
        net = Network(linear_topology(2, 1), seed=0)
        net.start()
        net.run_for(1.0)
        assert net.ping("h1", "h2") is None

    def test_ping_with_learning_switch(self):
        net = Network(linear_topology(2, 1), seed=0)
        runtime = MonolithicRuntime(net.controller)
        runtime.launch_app(LearningSwitch)
        net.start()
        net.run_for(1.0)
        rtt = net.ping("h1", "h2")
        assert rtt is not None and rtt > 0

    def test_reachability_full_with_flooder(self):
        net = Network(linear_topology(3, 1), seed=0)
        runtime = MonolithicRuntime(net.controller)
        runtime.launch_app(Flooder)
        net.start()
        net.run_for(1.0)
        assert net.reachability() == 1.0

    def test_reachability_subset_pairs(self):
        net = Network(linear_topology(3, 1), seed=0)
        runtime = MonolithicRuntime(net.controller)
        runtime.launch_app(Flooder)
        net.start()
        net.run_for(1.0)
        assert net.reachability(pairs=[("h1", "h2")]) == 1.0

    def test_reachability_empty_pairs(self):
        net = Network(linear_topology(2, 1), seed=0)
        net.start()
        assert net.reachability(pairs=[]) == 1.0

    def test_total_flow_entries(self):
        net = Network(linear_topology(3, 1), seed=0)
        runtime = MonolithicRuntime(net.controller)
        runtime.launch_app(Flooder)
        net.start()
        net.run_for(0.5)
        assert net.total_flow_entries() == 3  # one flood rule per switch
