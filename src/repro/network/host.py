"""End hosts: traffic sources and sinks.

Hosts attach to one switch port.  They record every delivered packet
(with timestamps) so experiments can compute reachability and latency,
and they answer pings so round-trip measurements work out of the box.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.packet import (
    IPPROTO_ICMP,
    IPPROTO_TCP,
    Packet,
    icmp_packet,
    tcp_packet,
)


class Host:
    """A simulated end host with one NIC."""

    def __init__(self, name: str, mac: str, ip: str, sim):
        self.name = name
        self.mac = mac
        self.ip = ip
        self.sim = sim
        self.link = None
        self.received: List[Tuple[float, Packet]] = []
        self.sent = 0
        self.auto_reply_pings = True
        #: When True the host echoes TCP payloads back (a trivial
        #: server), used by gateway/NAT experiments that need
        #: round-trip traffic.
        self.tcp_echo = False
        self._ping_seq = 0
        self._pending_pings: Dict[int, float] = {}
        self.ping_rtts: Dict[int, float] = {}

    @property
    def label(self) -> str:
        return self.name

    # -- wiring ----------------------------------------------------------

    def attach_link(self, link) -> None:
        if self.link is not None:
            raise ValueError(f"{self.name}: already attached")
        self.link = link

    # -- send/receive -------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Put a packet on the wire; False if the NIC/link is down."""
        if self.link is None:
            return False
        self.sent += 1
        return self.link.transmit(packet, self)

    def send_tcp(self, dst: "Host", dst_port: int = 80, src_port: int = 10000,
                 size: int = 1500, payload: str = "") -> bool:
        """Convenience: send one TCP packet to another host."""
        return self.send(
            tcp_packet(self.mac, dst.mac, self.ip, dst.ip,
                       src_port=src_port, dst_port=dst_port,
                       size=size, payload=payload)
        )

    def _link_deliver(self, packet: Packet, port: int) -> None:
        """Packets arriving from the attached link."""
        # A host NIC filters frames not addressed to it (or broadcast).
        if packet.eth_dst not in (self.mac, "ff:ff:ff:ff:ff:ff"):
            return
        self.received.append((self.sim.now, packet))
        if packet.ip_proto == IPPROTO_ICMP:
            self._handle_icmp(packet)
        elif self.tcp_echo and packet.ip_proto == IPPROTO_TCP:
            self.send(packet.reply(payload=f"echo:{packet.payload}"))

    def _handle_icmp(self, packet: Packet) -> None:
        payload = packet.payload or ""
        if payload.startswith("ping:") and self.auto_reply_pings:
            seq = payload.split(":", 1)[1]
            self.send(packet.reply(payload=f"pong:{seq}"))
        elif payload.startswith("pong:"):
            try:
                seq = int(payload.split(":", 1)[1])
            except ValueError:
                return
            sent_at = self._pending_pings.pop(seq, None)
            if sent_at is not None:
                self.ping_rtts[seq] = self.sim.now - sent_at

    # -- measurement ---------------------------------------------------------

    def ping(self, dst: "Host") -> int:
        """Send one echo request to ``dst``; returns the sequence number.

        The RTT (if the pong arrives) appears in :attr:`ping_rtts`
        under that sequence number.
        """
        self._ping_seq += 1
        seq = self._ping_seq
        self._pending_pings[seq] = self.sim.now
        self.send(
            icmp_packet(self.mac, dst.mac, self.ip, dst.ip, payload=f"ping:{seq}")
        )
        return seq

    def packets_from(self, src: "Host") -> List[Packet]:
        """Every packet this host received from ``src`` (by MAC)."""
        return [p for _, p in self.received if p.eth_src == src.mac]

    def clear_history(self) -> None:
        self.received.clear()
        self.ping_rtts.clear()
        self._pending_pings.clear()
        self.sent = 0

    def __repr__(self) -> str:
        return f"Host({self.name}, mac={self.mac}, ip={self.ip})"
