"""Incremental checkpointing: delta chains, dedup, and retention.

The contract under test (§4.1 + §5): a delta-chain checkpoint must be
*restore-equivalent* to the full image a non-incremental store would
have taken at the same point -- for every prefix of the chain, across
dedup skips, and across retention truncating a chain's base away.
"""

import pickle

import pytest

from repro.apps import LearningSwitch
from repro.core.crashpad.checkpoint import (
    DEDUP,
    DELTA,
    FULL,
    CheckpointError,
    CheckpointStore,
)


class DictApp:
    """Minimal app with a dict state and scripted mutations."""

    name = "dictapp"

    def __init__(self):
        self.state = {"a": 0, "table": {}}

    def get_state(self):
        return {k: v for k, v in self.state.items()}

    def set_state(self, state):
        self.state = dict(state)


def reference_blob(app):
    """What a non-incremental store would have written."""
    return pickle.dumps(app.get_state(), protocol=pickle.HIGHEST_PROTOCOL)


def drive(app, store, mutations):
    """Apply each mutation then checkpoint; collect (cp, reference)."""
    taken = []
    for seq, mutate in enumerate(mutations, start=1):
        mutate(app.state)
        checkpoint = store.take(app, before_seq=seq, now=float(seq))
        taken.append((checkpoint, reference_blob(app)))
    return taken


MUTATIONS = [
    lambda s: s.__setitem__("a", 1),
    lambda s: s["table"].__setitem__("x", [1, 2]),
    lambda s: None,                       # unchanged -> dedup
    lambda s: s["table"]["x"].append(3),  # nested in-place mutation
    lambda s: s.__setitem__("b", {"n": 0}),
    lambda s: None,                       # unchanged again
    lambda s: s.pop("a"),                 # key removal
    lambda s: s["b"].__setitem__("n", 7),
    lambda s: s.__setitem__("c", "end"),
]


class TestDeltaChains:
    def test_restore_from_delta_equals_restore_from_full_every_prefix(self):
        app = DictApp()
        store = CheckpointStore(keep=64, full_every=4)
        taken = drive(app, store, MUTATIONS)
        kinds = {cp.kind for cp, _ in taken}
        assert kinds == {FULL, DELTA, DEDUP}  # the chain actually mixed
        for checkpoint, reference in taken:
            assert (pickle.loads(store.materialize(checkpoint))
                    == pickle.loads(reference)), checkpoint.kind
        # Restore truncates the abandoned future, so walk newest-first:
        # each target is still retained when its turn comes.
        for checkpoint, reference in reversed(taken):
            replica = DictApp()
            store.restore(replica, checkpoint)
            assert replica.get_state() == pickle.loads(reference)

    def test_full_image_cadence(self):
        app = DictApp()
        store = CheckpointStore(keep=64, full_every=3, dedup=False)
        mutations = [lambda s, i=i: s.__setitem__("k", i) for i in range(9)]
        taken = [cp for cp, _ in drive(app, store, mutations)]
        assert [cp.kind for cp in taken] == [
            FULL, DELTA, DELTA, FULL, DELTA, DELTA, FULL, DELTA, DELTA]

    def test_restore_opens_a_fresh_chain(self):
        app = DictApp()
        store = CheckpointStore(keep=64, full_every=8)
        taken = drive(app, store, MUTATIONS[:4])
        store.restore(app, taken[1][0])
        app.state["post"] = True
        after = store.take(app, before_seq=99, now=9.0)
        # Entries after the restored one describe an abandoned future;
        # diffing against them would corrupt the next materialisation.
        assert after.kind == FULL
        assert pickle.loads(store.materialize(after)) == app.get_state()

    def test_non_dict_state_falls_back_to_monolithic_fulls(self):
        class TupleApp:
            name = "tup"

            def __init__(self):
                self.value = (1, 2)

            def get_state(self):
                return self.value

            def set_state(self, state):
                self.value = state

        app = TupleApp()
        store = CheckpointStore(full_every=8)
        first = store.take(app, before_seq=1, now=0.0)
        app.value = (3, 4)
        second = store.take(app, before_seq=2, now=0.0)
        assert first.kind == FULL and second.kind == FULL
        store.restore(app, first)
        assert app.value == (1, 2)


class TestDedup:
    def test_unchanged_state_costs_only_the_hash(self):
        app = DictApp()
        store = CheckpointStore(full_every=8,
                                hash_per_byte_cost=2e-9)
        store.take(app, before_seq=1, now=0.0)
        repeat = store.take(app, before_seq=2, now=0.0)
        assert repeat.kind == DEDUP
        assert repeat.blob == b""
        assert repeat.cost == pytest.approx(
            repeat.state_size * store.hash_per_byte_cost)
        assert store.dedup_hits == 1
        # A dedup entry still restores to the (unchanged) state.
        replica = DictApp()
        store.restore(replica, repeat)
        assert replica.get_state() == app.get_state()

    def test_dedup_disabled_writes_deltas(self):
        app = DictApp()
        store = CheckpointStore(full_every=8, dedup=False)
        store.take(app, before_seq=1, now=0.0)
        repeat = store.take(app, before_seq=2, now=0.0)
        assert repeat.kind == DELTA
        assert store.dedup_hits == 0


class TestRestoreTruncation:
    def test_dedup_take_after_restore_restores_the_restored_state(self):
        # Regression: take {x:1} (full), take {x:2} (delta), restore to
        # the first, take the unchanged state (dedup).  The dedup entry
        # must alias the *restored* chain, not the abandoned delta --
        # restoring from it has to yield {x:1}, never {x:2}.
        app = DictApp()
        store = CheckpointStore(keep=64, full_every=8)
        app.state = {"x": 1}
        first = store.take(app, before_seq=1, now=1.0)
        app.state = {"x": 2}
        second = store.take(app, before_seq=2, now=2.0)
        assert first.kind == FULL and second.kind == DELTA
        store.restore(app, first)
        assert app.get_state() == {"x": 1}
        again = store.take(app, before_seq=3, now=3.0)
        assert again.kind == DEDUP
        replica = DictApp()
        store.restore(replica, again)
        assert replica.get_state() == {"x": 1}

    def test_restore_drops_the_abandoned_future(self):
        app = DictApp()
        store = CheckpointStore(keep=64, full_every=4)
        taken = drive(app, store, MUTATIONS)
        target = taken[2][0]
        store.restore(app, target)
        history = store.history()
        assert history[-1] is target
        assert len(history) == 3
        assert store.latest_before(10 ** 9) is target
        assert store.total_bytes == sum(cp.size for cp in history)

    def test_latest_before_prefers_the_newest_duplicate(self):
        app = DictApp()
        store = CheckpointStore(keep=64, full_every=8)
        taken = drive(app, store, MUTATIONS[:3])
        store.restore(app, taken[0][0])
        retaken = store.take(app, before_seq=1, now=9.0)
        assert store.latest_before(1) is retaken
        replica = DictApp()
        store.restore(replica, retaken)
        assert replica.get_state() == pickle.loads(taken[0][1])


class TestRetention:
    def test_chain_truncation_past_keep_still_restores(self):
        app = DictApp()
        store = CheckpointStore(keep=3, full_every=8)
        taken = drive(app, store, MUTATIONS)
        survivors = store.history()
        assert len(survivors) == 3
        assert store.evicted_count == len(MUTATIONS) - 3
        # The oldest survivor was mid-chain before eviction; it must
        # have been promoted to a self-contained image.
        assert survivors[0].kind == FULL
        references = {id(cp): ref for cp, ref in taken}
        for survivor in survivors:
            assert (pickle.loads(store.materialize(survivor))
                    == pickle.loads(references[id(survivor)]))

    def test_retained_bytes_tracks_live_entries_only(self):
        app = DictApp()
        store = CheckpointStore(keep=3, full_every=4)
        drive(app, store, MUTATIONS)
        live = sum(cp.size for cp in store.history())
        assert store.total_bytes == live
        assert store.bytes_written >= store.total_bytes
        assert store.stats()["retained_bytes"] == live
        assert store.stats()["evicted"] == store.evicted_count

    def test_evicted_entries_leave_as_self_contained_images(self):
        # Single-entry evictions always promote the next survivor
        # first, so whatever leaves the store is (by then) FULL and
        # still materialisable on its own.
        app = DictApp()
        store = CheckpointStore(keep=2, full_every=8)
        taken = drive(app, store, MUTATIONS[:5])
        evicted = taken[1][0]
        assert evicted not in store.history()
        assert evicted.kind == FULL
        assert (pickle.loads(store.materialize(evicted))
                == pickle.loads(taken[1][1]))

    def test_materialize_rejects_foreign_deltas(self):
        from repro.core.crashpad.checkpoint import Checkpoint

        store = CheckpointStore(full_every=8)
        store.take(DictApp(), before_seq=1, now=0.0)
        foreign = Checkpoint(before_seq=9, taken_at=0.0,
                             blob=pickle.dumps(({}, ())), kind=DELTA)
        with pytest.raises(CheckpointError):
            store.materialize(foreign)


class TestCostModel:
    def test_delta_cheaper_than_full_for_large_state(self):
        app = DictApp()
        app.state["bulk"] = list(range(4000))
        store = CheckpointStore(full_every=8)
        full = store.take(app, before_seq=1, now=0.0)
        app.state["a"] = 1  # one small key changes
        delta = store.take(app, before_seq=2, now=0.0)
        assert full.kind == FULL and delta.kind == DELTA
        assert store.cost_of(delta) < store.cost_of(full) / 3

    def test_restore_cost_charges_the_chain_bytes(self):
        app = LearningSwitch()
        store = CheckpointStore(full_every=8)
        first = store.take(app, before_seq=1, now=0.0)
        for seq in range(2, 6):
            app.mac_tables.setdefault(seq, {})[f"m{seq}"] = seq
            last = store.take(app, before_seq=seq, now=0.0)
        chain_bytes = sum(c.size for c in store.history()[1:])
        expected = (store.base_cost
                    + (last.state_size + chain_bytes) * store.per_byte_cost)
        assert store.restore_cost_of(last) == pytest.approx(expected)
        assert store.restore_cost_of(first) == pytest.approx(
            store.base_cost + first.state_size * store.per_byte_cost)
