"""Controller replication: primary-backup HA via NetLog shipping.

LegoSDN removes the SDN-App <-> controller fate-sharing; this package
removes the controller itself as a single point of failure, in the
SMaRtLight style (a small primary-backup replicated control plane with
a lease-based failure detector and fencing).

One :class:`~repro.replication.replicaset.ReplicaSet` runs a primary
:class:`~repro.controller.core.Controller` (with its LegoSDN runtime)
plus N warm backups on the same simulated clock:

- the primary ships every committed NetLog record and per-app progress
  deltas to the backups over the stack's existing byte-codec UDP
  channel (:mod:`repro.replication.frames` adds the frame inventory);
- backups replay committed records into shadow flow tables, so each
  holds a consistent copy of the network state the primary installed;
- a heartbeat/lease protocol with monotonic epoch numbers detects
  primary failure; the lowest-id live backup is promoted, the new
  epoch fences the old one at every switch
  (:class:`~repro.replication.fence.EpochFence` -- stale-primary
  writes are rejected, so no split brain), orphaned open transactions
  are rolled back from their shipped inverses, and the NetLog tail is
  replayed to converge before dispatch resumes;
- AppVisor stubs survive the failover and re-attach to the new
  primary's proxy with their state and checkpoints intact -- Crash-Pad
  keeps handling *app* failures unchanged on whichever replica is
  primary;
- :mod:`repro.replication.byzantine` hardens the whole conversation
  against replicas that *lie*: pair-keyed HMAC stamps on every frame,
  chain digests over the committed record stream voted 2f+1 in
  BYZANTINE mode, and an adaptive, epoch-fenced mode policy that
  escalates from cheap CRASH_FAULT replication on divergence or auth
  anomalies and de-escalates after a clean window.
"""

from repro.replication.byzantine import (
    AuthFault,
    DigestLedger,
    ModeSwitch,
    ReplicaKeyring,
    ReplicationMode,
    ReplicationModePolicy,
    chain_digest,
    resolve_leaf,
    tolerable_f,
    vote_threshold,
)
from repro.replication.fence import EpochFence
from repro.replication.frames import (
    AppDelta,
    RecordShip,
    ReplAck,
    ReplHeartbeat,
    TxnResolve,
)
from repro.replication.replicaset import (
    ControllerReplica,
    FailoverRecord,
    ReplicaRole,
    ReplicaSet,
)

__all__ = [
    "AppDelta",
    "AuthFault",
    "ControllerReplica",
    "DigestLedger",
    "EpochFence",
    "FailoverRecord",
    "ModeSwitch",
    "RecordShip",
    "ReplAck",
    "ReplHeartbeat",
    "ReplicaKeyring",
    "ReplicaRole",
    "ReplicaSet",
    "ReplicationMode",
    "ReplicationModePolicy",
    "TxnResolve",
    "chain_digest",
    "resolve_leaf",
    "tolerable_f",
    "vote_threshold",
]
