"""Property-based tests (hypothesis) on core data structures and invariants.

Each property encodes something the rest of the system silently relies
on: match algebra laws, flow-table ordering, the inversion round-trip,
serialisation totality, checkpoint fidelity, and policy-language
round-trips.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.apps import LearningSwitch
from repro.core.crashpad.checkpoint import CheckpointStore
from repro.core.crashpad.policies import CompromisePolicy
from repro.core.crashpad.policy_lang import PolicyTable
from repro.network.packet import Packet
from repro.openflow.actions import Drop, Flood, Output
from repro.openflow.flowtable import FlowTable
from repro.openflow.inversion import invert
from repro.openflow.match import MATCH_FIELDS, Match
from repro.openflow.messages import FlowMod, FlowModCommand, PacketIn
from repro.openflow.serialization import decode_message, encode_message

# -- strategies -------------------------------------------------------

macs = st.sampled_from(
    [f"00:00:00:00:00:{i:02x}" for i in range(1, 6)] + [None])
ips = st.sampled_from(["10.0.0.1", "10.0.0.2", "10.0.0.3", None])
ports = st.sampled_from([1, 2, 3, None])
small_ints = st.integers(min_value=0, max_value=3)


@st.composite
def matches(draw):
    return Match(
        in_port=draw(ports),
        eth_src=draw(macs),
        eth_dst=draw(macs),
        ip_src=draw(ips),
        ip_dst=draw(ips),
        tp_dst=draw(st.sampled_from([80, 443, None])),
    )


@st.composite
def packets(draw):
    return Packet(
        eth_src=draw(macs) or "00:00:00:00:00:01",
        eth_dst=draw(macs) or "00:00:00:00:00:02",
        ip_src=draw(ips),
        ip_dst=draw(ips),
        tp_dst=draw(st.sampled_from([80, 443, 8080])),
        size=draw(st.integers(min_value=60, max_value=1500)),
        payload=draw(st.text(alphabet=string.ascii_letters, max_size=20)),
    )


actions_strategy = st.lists(
    st.sampled_from([Output(1), Output(2), Flood(), Drop()]),
    min_size=0, max_size=3).map(tuple)


@st.composite
def flow_mods(draw):
    return FlowMod(
        match=draw(matches()),
        command=draw(st.sampled_from(list(FlowModCommand))),
        priority=draw(st.integers(min_value=1, max_value=500)),
        actions=draw(actions_strategy),
        idle_timeout=draw(st.sampled_from([0.0, 5.0])),
        hard_timeout=draw(st.sampled_from([0.0, 30.0])),
    )


# -- match algebra ------------------------------------------------------


@given(matches())
def test_match_is_subset_of_itself(m):
    assert m.is_subset_of(m)


@given(matches())
def test_everything_subset_of_wildcard(m):
    assert m.is_subset_of(Match())


@given(matches(), matches())
def test_subset_implies_overlap_or_empty(a, b):
    # if a ⊆ b then any packet matching a matches b, so they overlap
    if a.is_subset_of(b):
        assert a.overlaps(b)


@given(matches(), matches())
def test_overlap_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(matches(), packets(), st.sampled_from([1, 2, 3]))
def test_subset_semantics_agree_with_matching(a, pkt, in_port):
    """If a ⊆ wildcard-b and a matches a packet, b must match it too."""
    b = Match(eth_dst=a.eth_dst)  # b constrains at most one field of a
    if a.is_subset_of(b) and a.matches(pkt, in_port):
        assert b.matches(pkt, in_port)


@given(packets(), st.sampled_from([1, 2, 3]))
def test_from_packet_always_matches_its_packet(pkt, in_port):
    assert Match.from_packet(pkt, in_port).matches(pkt, in_port)


@given(matches())
def test_specificity_plus_wildcards_is_field_count(m):
    assert m.specificity() + m.wildcard_count() == len(MATCH_FIELDS)


# -- flow table invariants -----------------------------------------------


@given(st.lists(flow_mods(), min_size=1, max_size=12))
@settings(max_examples=60)
def test_table_always_sorted_by_priority(mods):
    table = FlowTable()
    for mod in mods:
        table.apply_flow_mod(mod, 0.0)
    priorities = [e.priority for e in table]
    assert priorities == sorted(priorities, reverse=True)


@given(st.lists(flow_mods(), min_size=1, max_size=12))
@settings(max_examples=60)
def test_no_duplicate_strict_rules(mods):
    """At most one entry per (match, priority) -- ADD displaces."""
    table = FlowTable()
    for mod in mods:
        table.apply_flow_mod(mod, 0.0)
    keys = [(e.match, e.priority) for e in table]
    assert len(keys) == len(set(keys))


@given(st.lists(flow_mods(), min_size=1, max_size=10), packets(),
       st.sampled_from([1, 2, 3]))
@settings(max_examples=60)
def test_lookup_returns_highest_priority_match(mods, pkt, in_port):
    table = FlowTable()
    for mod in mods:
        table.apply_flow_mod(mod, 0.0)
    entry = table.lookup(pkt, in_port)
    matching = [e for e in table if e.match.matches(pkt, in_port)]
    if entry is None:
        assert matching == []
    else:
        assert entry.priority == max(e.priority for e in matching)


# -- inversion round-trip ---------------------------------------------------


@given(st.lists(flow_mods(), min_size=0, max_size=6), flow_mods())
@settings(max_examples=80)
def test_inversion_round_trip(setup_mods, mod):
    """apply(mod); apply(inverse(mod)) == identity, from any start state."""
    table = FlowTable()
    for setup in setup_mods:
        table.apply_flow_mod(setup, 0.0)
    fp_before = table.fingerprint()
    pre = table.apply_flow_mod(mod, 0.0)
    inversion = invert(mod, pre, dpid=1, now=0.0)
    for inverse in inversion.messages:
        table.apply_flow_mod(inverse, 0.0)
    assert table.fingerprint() == fp_before


@given(st.lists(flow_mods(), min_size=1, max_size=8))
@settings(max_examples=60)
def test_transaction_inversion_in_reverse_order(mods):
    """A whole transaction undone in reverse restores the start state."""
    table = FlowTable()
    table.apply_flow_mod(FlowMod(match=Match(eth_dst="00:00:00:00:00:01"),
                                 priority=250, actions=(Output(1),)), 0.0)
    fp_before = table.fingerprint()
    log = []
    for mod in mods:
        pre = table.apply_flow_mod(mod, 0.0)
        log.append(invert(mod, pre, 1, 0.0))
    for inversion in reversed(log):
        for inverse in inversion.messages:
            table.apply_flow_mod(inverse, 0.0)
    assert table.fingerprint() == fp_before


# -- serialisation totality ---------------------------------------------------


@given(flow_mods())
@settings(max_examples=80)
def test_flow_mod_wire_round_trip(mod):
    assert decode_message(encode_message(mod)) == mod


@given(packets(), st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=60)
def test_packet_in_wire_round_trip(pkt, dpid, in_port):
    msg = PacketIn(dpid=dpid, in_port=in_port, packet=pkt)
    decoded = decode_message(encode_message(msg))
    assert decoded == msg
    assert decoded.packet.payload == pkt.payload


# -- checkpoint fidelity --------------------------------------------------------


@given(st.dictionaries(
    st.integers(min_value=1, max_value=5),
    st.dictionaries(macs.filter(lambda m: m is not None),
                    st.integers(min_value=1, max_value=4), max_size=4),
    max_size=4))
@settings(max_examples=60)
def test_checkpoint_restore_is_exact(mac_tables):
    app = LearningSwitch()
    app.mac_tables = dict(mac_tables)
    app.flows_installed = sum(len(t) for t in mac_tables.values())
    store = CheckpointStore()
    checkpoint = store.take(app, 1, 0.0)
    app.mac_tables = {99: {"zz": 9}}
    app.flows_installed = -1
    store.restore(app, checkpoint)
    assert app.mac_tables == mac_tables
    assert app.flows_installed == sum(len(t) for t in mac_tables.values())


# -- policy language round-trip ---------------------------------------------------


app_patterns = st.sampled_from(["*", "firewall", "fw-*", "routing"])
event_patterns = st.sampled_from(["*", "PacketIn", "Switch*", "LinkRemoved"])
policies = st.sampled_from(list(CompromisePolicy))


@given(st.lists(st.tuples(app_patterns, event_patterns, policies),
                min_size=0, max_size=6))
def test_policy_table_render_parse_round_trip(rules):
    table = PolicyTable()
    for app_pattern, event_pattern, policy in rules:
        table.add(app_pattern, event_pattern, policy)
    reparsed = PolicyTable.parse(table.render())
    assert [(r.app_pattern, r.event_pattern, r.policy)
            for r in reparsed.rules] == \
        [(r.app_pattern, r.event_pattern, r.policy) for r in table.rules]


@given(st.lists(st.tuples(app_patterns, event_patterns, policies),
                min_size=0, max_size=6),
       st.sampled_from(["firewall", "routing", "fw-edge", "monitor"]),
       st.sampled_from(["PacketIn", "SwitchLeave", "LinkRemoved"]))
def test_policy_lookup_total(rules, app_name, event_type):
    """Lookup never fails and always returns a CompromisePolicy."""
    table = PolicyTable()
    for app_pattern, event_pattern, policy in rules:
        table.add(app_pattern, event_pattern, policy)
    assert isinstance(table.lookup(app_name, event_type), CompromisePolicy)
