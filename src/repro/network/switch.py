"""OpenFlow switch datapath.

Implements the switch side of the control loop: flow-table lookup and
action execution for data packets, table-miss punts to the controller,
and the controller-message handlers (FlowMod, PacketOut, barriers,
stats).  Flow expiry runs on a periodic sweep scheduled by the network.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.network.links import Link
from repro.openflow.actions import (
    Drop,
    Enqueue,
    Flood,
    Output,
    ToController,
)
from repro.openflow.flowtable import FlowTable
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FlowMod,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    PacketIn,
    PacketInReason,
    PacketOut,
    PortStatsEntry,
    PortStatsReply,
    PortStatsRequest,
    PortStatus,
    PortStatusReason,
)


class PortCounters:
    """Per-port RX/TX packet and byte counters."""

    __slots__ = ("rx_packets", "tx_packets", "rx_bytes", "tx_bytes",
                 "rx_dropped", "tx_dropped")

    def __init__(self):
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.tx_bytes = 0
        self.rx_dropped = 0
        self.tx_dropped = 0


class Switch:
    """A single OpenFlow switch."""

    #: How many punted packets the switch buffers (OFP-style buffer_id
    #: slots).  Oldest entries are evicted first.
    PACKET_BUFFER_SLOTS = 64

    def __init__(self, dpid: int, sim, buffer_packets: bool = True):
        self.dpid = dpid
        self.sim = sim
        self.flow_table = FlowTable()
        self.ports: Dict[int, Link] = {}
        self.port_counters: Dict[int, PortCounters] = {}
        self.up = True
        self.channel = None  # set by the controller on connect
        #: Optional epoch fence (repro.replication.fence.EpochFence).
        #: When installed, controller writes carrying a stale epoch are
        #: rejected -- the split-brain guard for replicated control
        #: planes.  None (the default) accepts every write.
        self.fence = None
        self.fenced_writes = 0
        self.packet_ins_sent = 0
        self.messages_handled = 0
        self.buffer_packets = buffer_packets
        self._packet_buffer: Dict[int, tuple] = {}  # id -> (packet, in_port)
        self._next_buffer_id = 1
        self.buffer_hits = 0
        self.buffer_misses = 0

    @property
    def label(self) -> str:
        return f"s{self.dpid}"

    # -- wiring ----------------------------------------------------------

    def attach_link(self, port: int, link: Link) -> None:
        if port in self.ports:
            raise ValueError(f"{self.label}: port {port} already attached")
        self.ports[port] = link
        self.port_counters[port] = PortCounters()

    def live_ports(self):
        """Ports whose link is currently up."""
        return {p for p, link in self.ports.items() if link.up}

    # -- dataplane ---------------------------------------------------------

    def _link_deliver(self, packet, in_port: int) -> None:
        """Entry point for packets arriving from a link."""
        if not self.up:
            return
        counters = self.port_counters[in_port]
        counters.rx_packets += 1
        counters.rx_bytes += packet.size
        self.receive_packet(packet, in_port)

    def receive_packet(self, packet, in_port: int) -> None:
        """Run the pipeline: LLDP punt, TTL check, table lookup, actions."""
        if packet.ttl <= 0:
            # TTL exhausted: the packet has looped. Drop it so that a
            # forwarding loop (a byzantine failure the invariant
            # checker must catch) cannot wedge the simulation.
            return
        packet = replace(packet, ttl=packet.ttl - 1)
        if packet.is_lldp():
            # Link-discovery frames always go to the controller.
            self._packet_in(packet, in_port, PacketInReason.ACTION)
            return
        entry = self.flow_table.lookup(packet, in_port)
        if entry is None:
            self._packet_in(packet, in_port, PacketInReason.NO_MATCH)
            return
        entry.hit(packet, self.sim.now)
        self.apply_actions(entry.actions, packet, in_port)

    def apply_actions(self, actions, packet, in_port: Optional[int]) -> None:
        """Execute an action list: rewrites take effect for later outputs."""
        for action in actions:
            if isinstance(action, (Output, Enqueue)):
                self.send_out(packet, action.port)
            elif isinstance(action, Flood):
                for port in sorted(self.live_ports()):
                    if port != in_port:
                        self.send_out(packet, port)
            elif isinstance(action, ToController):
                self._packet_in(packet, in_port or 0, PacketInReason.ACTION)
            elif isinstance(action, Drop):
                return
            else:
                packet = action.apply(packet)

    def send_out(self, packet, port: int) -> None:
        link = self.ports.get(port)
        counters = self.port_counters.get(port)
        if link is None or not link.up:
            if counters:
                counters.tx_dropped += 1
            return
        counters.tx_packets += 1
        counters.tx_bytes += packet.size
        link.transmit(packet, self)

    def _packet_in(self, packet, in_port: int, reason) -> None:
        self.packet_ins_sent += 1
        buffer_id = None
        if self.buffer_packets and not packet.is_lldp():
            buffer_id = self._next_buffer_id
            self._next_buffer_id += 1
            self._packet_buffer[buffer_id] = (packet, in_port)
            if len(self._packet_buffer) > self.PACKET_BUFFER_SLOTS:
                oldest = next(iter(self._packet_buffer))
                del self._packet_buffer[oldest]
        self.send_to_controller(
            PacketIn(dpid=self.dpid, in_port=in_port, packet=packet,
                     reason=reason, buffer_id=buffer_id)
        )

    # -- control plane -----------------------------------------------------

    def handle_message(self, msg, epoch=None) -> None:
        """Process one controller->switch message.

        ``epoch`` is the sending controller's replication epoch (None
        for unreplicated deployments and direct test calls).  A fenced
        switch silently discards writes from a superseded epoch: the
        old primary's session token is no longer honoured, so a stale
        primary cannot mutate switch state after a failover.
        """
        if not self.up:
            return
        if self.fence is not None and not self.fence.permits(epoch):
            self.fenced_writes += 1
            self.fence.note_rejected(self.dpid, msg, epoch)
            return
        self.messages_handled += 1
        if isinstance(msg, FlowMod):
            self.flow_table.apply_flow_mod(msg, self.sim.now)
        elif isinstance(msg, PacketOut):
            self._handle_packet_out(msg)
        elif isinstance(msg, BarrierRequest):
            self.send_to_controller(BarrierReply(xid=msg.xid))
        elif isinstance(msg, FlowStatsRequest):
            self.send_to_controller(self._flow_stats(msg))
        elif isinstance(msg, PortStatsRequest):
            self.send_to_controller(self._port_stats(msg))
        elif isinstance(msg, EchoRequest):
            self.send_to_controller(EchoReply(payload=msg.payload, xid=msg.xid))
        else:
            self.send_to_controller(
                ErrorMsg(reason=f"unsupported message {msg.type_name}", xid=msg.xid)
            )

    def _handle_packet_out(self, msg: PacketOut) -> None:
        """Release a buffered packet or inject an inline one.

        A buffer_id is consumed on first use (as in OpenFlow); a stale
        or already-consumed id yields an ErrorMsg unless the sender
        also attached the packet inline as a fallback.
        """
        packet, in_port = msg.packet, msg.in_port
        if msg.buffer_id is not None:
            buffered = self._packet_buffer.pop(msg.buffer_id, None)
            if buffered is not None:
                self.buffer_hits += 1
                packet, buffered_port = buffered
                if in_port is None:
                    in_port = buffered_port
            else:
                self.buffer_misses += 1
                if packet is None:
                    self.send_to_controller(ErrorMsg(
                        reason=f"unknown buffer_id {msg.buffer_id}",
                        xid=msg.xid))
                    return
        if packet is not None:
            self.apply_actions(msg.actions, packet, in_port)

    def _flow_stats(self, req: FlowStatsRequest) -> FlowStatsReply:
        entries = [
            FlowStatsEntry(
                match=e.match,
                priority=e.priority,
                actions=e.actions,
                packet_count=e.packet_count,
                byte_count=e.byte_count,
                duration=self.sim.now - e.installed_at,
                idle_timeout=e.idle_timeout,
                hard_timeout=e.hard_timeout,
                cookie=e.cookie,
            )
            for e in self.flow_table
            if e.match.is_subset_of(req.match)
        ]
        return FlowStatsReply(dpid=self.dpid, entries=entries, xid=req.xid)

    def _port_stats(self, req: PortStatsRequest) -> PortStatsReply:
        ports = [req.port] if req.port is not None else sorted(self.ports)
        entries = []
        for port in ports:
            c = self.port_counters.get(port)
            if c is None:
                continue
            entries.append(
                PortStatsEntry(
                    port=port,
                    rx_packets=c.rx_packets,
                    tx_packets=c.tx_packets,
                    rx_bytes=c.rx_bytes,
                    tx_bytes=c.tx_bytes,
                    rx_dropped=c.rx_dropped,
                    tx_dropped=c.tx_dropped,
                )
            )
        return PortStatsReply(dpid=self.dpid, entries=entries, xid=req.xid)

    def send_to_controller(self, msg) -> None:
        if self.channel is not None and self.up:
            self.channel.to_controller(msg)

    # -- liveness ------------------------------------------------------------

    def _link_status(self, port: int, up: bool) -> None:
        """A local link changed state; notify the controller."""
        if not self.up:
            return
        self.send_to_controller(
            PortStatus(
                dpid=self.dpid,
                port=port,
                reason=PortStatusReason.MODIFY,
                link_up=up,
            )
        )

    def sweep_flows(self) -> None:
        """Expire timed-out flows; emit FlowRemoved where requested."""
        if not self.up:
            return
        for msg in self.flow_table.expire(self.sim.now, dpid=self.dpid):
            self.send_to_controller(msg)

    def set_up(self, up: bool) -> None:
        """Power the switch on/off.  Off drops the control channel."""
        if self.up == up:
            return
        self.up = up
        if not up:
            self.flow_table = FlowTable()
            if self.channel is not None:
                self.channel.disconnect()
        else:
            if self.channel is not None:
                self.channel.reconnect()

    def __repr__(self) -> str:
        return (f"Switch(dpid={self.dpid}, ports={sorted(self.ports)}, "
                f"flows={len(self.flow_table)}, up={self.up})")
