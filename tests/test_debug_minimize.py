"""Minimal-causal-sequence search (repro.debug.minimize).

ddmin is exercised both as a pure algorithm (hypothesis properties
over synthetic planted triggers: whatever the surrounding noise, the
planted subset and nothing else comes back, deterministically) and
end-to-end on a recorded multi-event failure.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.debug import (
    MinimizedRepro,
    ddmin,
    minimize_failure,
    planted_armed_recording,
)
from repro.debug.minimize import MinimizationError
from repro.debug.replay import ReplayHarness


class TestDdminUnits:
    def test_single_culprit(self):
        minimal = ddmin(list(range(10)), lambda seq: 5 in seq)
        assert minimal == [5]

    def test_pair_of_culprits(self):
        wanted = {2, 7}
        minimal = ddmin(list(range(10)),
                        lambda seq: wanted <= set(seq))
        assert minimal == [2, 7]

    def test_order_is_preserved(self):
        items = ["d", "b", "a", "c"]
        minimal = ddmin(items, lambda seq: {"b", "c"} <= set(seq))
        assert minimal == ["b", "c"]

    def test_full_sequence_needed_returns_everything(self):
        items = list(range(5))
        minimal = ddmin(items, lambda seq: len(seq) == 5)
        assert minimal == items

    def test_rejects_non_failing_input(self):
        with pytest.raises(ValueError):
            ddmin(list(range(4)), lambda seq: False)

    def test_always_failing_minimizes_to_one(self):
        # ddmin is 1-minimal: it shrinks but never probes the empty
        # sequence, so a test that holds everywhere leaves one item.
        assert len(ddmin(list(range(6)), lambda seq: True)) == 1


# -- hypothesis: planted triggers always come back exactly ------------

@st.composite
def planted_case(draw, trigger_size):
    n = draw(st.integers(min_value=trigger_size, max_value=24))
    indices = draw(st.sets(st.integers(min_value=0, max_value=n - 1),
                           min_size=trigger_size, max_size=trigger_size))
    return n, sorted(indices)


class TestDdminProperties:
    @settings(max_examples=60, deadline=None)
    @given(planted_case(trigger_size=2))
    def test_finds_planted_2_event_trigger(self, case):
        n, planted = case
        minimal = ddmin(list(range(n)),
                        lambda seq: set(planted) <= set(seq))
        assert minimal == planted

    @settings(max_examples=60, deadline=None)
    @given(planted_case(trigger_size=3))
    def test_finds_planted_3_event_trigger(self, case):
        n, planted = case
        minimal = ddmin(list(range(n)),
                        lambda seq: set(planted) <= set(seq))
        assert minimal == planted

    @settings(max_examples=30, deadline=None)
    @given(planted_case(trigger_size=3))
    def test_seed_stable_same_input_same_probes(self, case):
        # The search must be deterministic: same sequence, same test,
        # same result AND the same probe schedule (no hidden RNG).
        n, planted = case

        def run():
            probes = []

            def test(seq):
                probes.append(tuple(seq))
                return set(planted) <= set(seq)

            return ddmin(list(range(n)), test), probes

        first_minimal, first_probes = run()
        second_minimal, second_probes = run()
        assert first_minimal == second_minimal == planted
        assert first_probes == second_probes


# -- end-to-end on a recorded failure ---------------------------------

class TestMinimizeFailure:
    def test_planted_crash_minimizes_to_exactly_three(self):
        harness, recording = planted_armed_recording(seed=0, loss=0.2)
        assert len(recording.events) > 3  # noise actually recorded
        repro = minimize_failure(recording, harness)
        assert isinstance(repro, MinimizedRepro)
        assert len(repro) == 3
        markers = []
        for captured in repro.minimal_events:
            packet = getattr(captured.event, "packet", None)
            markers.append(getattr(packet, "payload", ""))
        assert markers == ["ARM-A", "ARM-B", "TRIGGER-C"]
        # Attached to the ticket as a JSON-clean document.
        doc = recording.ticket.minimized
        assert doc is not None
        assert doc == json.loads(json.dumps(doc))
        assert doc["minimized_length"] == 3
        assert doc["original_length"] == len(recording.events)
        assert [s["step"] for s in doc["steps"]] == [0, 1, 2]

    def test_clean_recording_raises(self):
        harness = ReplayHarness()

        def drive(net, runtime):
            net.run_for(0.2)

        recording = harness.record(drive)
        assert not recording.signature.failed
        with pytest.raises(MinimizationError):
            minimize_failure(recording, harness)
