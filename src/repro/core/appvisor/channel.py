"""The simulated UDP channel between proxy and stub.

"The proxy and stub communicate with each other using UDP."  (§4.1)

Datagrams are serialised frames; delivery takes ``base_delay`` plus a
per-byte transmission cost (this is where the paper's §3.1 caveat --
"serialization and de-serialization of messages, and the communication
protocol overhead introduce additional latency into the control-loop"
-- becomes measurable: the E2 experiment reads these costs straight
off the channel).  UDP is unreliable, so a ``loss`` probability can be
configured; heartbeats tolerate loss, and lost event traffic surfaces
as an event-timeout in the failure detector.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.appvisor.rpc import decode_frame, encode_frame


class ChannelEndpoint:
    """One side of the channel: send frames, receive via a handler."""

    def __init__(self, channel: "UdpChannel", side: str):
        self._channel = channel
        self._side = side
        self.handler: Optional[Callable] = None
        self.frames_sent = 0
        self.bytes_sent = 0

    def on_frame(self, handler: Callable) -> None:
        """Install the receive handler for this endpoint."""
        self.handler = handler

    def send(self, frame) -> bool:
        """Serialise and transmit ``frame`` to the peer endpoint."""
        data = encode_frame(frame)
        self.frames_sent += 1
        self.bytes_sent += len(data)
        return self._channel._transmit(self._side, data)


class UdpChannel:
    """A bidirectional, lossy, delayed datagram channel."""

    def __init__(self, sim, base_delay: float = 0.0002,
                 per_byte_delay: float = 2e-8, loss: float = 0.0,
                 seed: int = 0):
        self.sim = sim
        self.base_delay = base_delay
        self.per_byte_delay = per_byte_delay
        self.loss = loss
        self.rng = random.Random(seed)
        self.proxy_end = ChannelEndpoint(self, "proxy")
        self.stub_end = ChannelEndpoint(self, "stub")
        self.datagrams_delivered = 0
        self.datagrams_lost = 0
        self.bytes_carried = 0
        # Per-direction transmit serialisation: the sender's interface
        # puts one datagram on the wire at a time, so a burst of sends
        # drains at per_byte_delay line rate and ordering is inherent
        # (a small datagram can never overtake a big one).
        self._tx_free_at = {"proxy": 0.0, "stub": 0.0}

    def delay_for(self, nbytes: int) -> float:
        """One-way latency for an ``nbytes`` datagram on an idle link."""
        return self.base_delay + nbytes * self.per_byte_delay

    def _transmit(self, from_side: str, data: bytes) -> bool:
        if self.loss > 0 and self.rng.random() < self.loss:
            self.datagrams_lost += 1
            return False
        dest = self.stub_end if from_side == "proxy" else self.proxy_end
        self.bytes_carried += len(data)

        def deliver():
            self.datagrams_delivered += 1
            if dest.handler is not None:
                dest.handler(decode_frame(data))

        tx_start = max(self.sim.now, self._tx_free_at[from_side])
        tx_end = tx_start + len(data) * self.per_byte_delay
        self._tx_free_at[from_side] = tx_end
        self.sim.schedule_at(tx_end + self.base_delay, deliver)
        return True
