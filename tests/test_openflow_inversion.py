"""Unit tests for the NetLog inversion algebra.

The central property: applying a FlowMod and then its inverse leaves
the flow table exactly where it started (structure always; counters
via the counter-cache, tested separately in test_netlog_counter_cache).
"""

import pytest

from repro.openflow.actions import Drop, Output
from repro.openflow.flowtable import FlowTable
from repro.openflow.inversion import invert
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand, PacketOut


def apply_and_invert(table, mod, dpid=1, now=0.0):
    """Apply mod, compute its inverse, apply the inverse; return inversion."""
    pre = table.apply_flow_mod(mod, now)
    inversion = invert(mod, pre, dpid, now)
    for inverse in inversion.messages:
        table.apply_flow_mod(inverse, now)
    return inversion


def add_mod(match, priority=100, actions=(Output(1),), **kw):
    return FlowMod(match=match, command=FlowModCommand.ADD,
                   priority=priority, actions=actions, **kw)


class TestInvertAdd:
    def test_add_then_inverse_restores_empty_table(self):
        t = FlowTable()
        apply_and_invert(t, add_mod(Match(eth_dst="d")))
        assert len(t) == 0

    def test_add_displacing_existing_restores_original(self):
        t = FlowTable()
        t.apply_flow_mod(add_mod(Match(eth_dst="d"), actions=(Output(1),)), 0.0)
        fp = t.fingerprint()
        apply_and_invert(t, add_mod(Match(eth_dst="d"), actions=(Output(9),)))
        assert t.fingerprint() == fp
        assert t.entries[0].actions == (Output(1),)

    def test_inverse_of_add_is_strict_delete_first(self):
        inversion = invert(add_mod(Match(eth_dst="d"), priority=42), [], 1, 0.0)
        assert inversion.messages[0].command == FlowModCommand.DELETE_STRICT
        assert inversion.messages[0].priority == 42


class TestInvertDelete:
    def test_delete_then_inverse_restores_entries(self):
        t = FlowTable()
        t.apply_flow_mod(add_mod(Match(eth_dst="a")), 0.0)
        t.apply_flow_mod(add_mod(Match(eth_dst="b"), priority=200), 0.0)
        fp = t.fingerprint()
        mod = FlowMod(match=Match(), command=FlowModCommand.DELETE)
        apply_and_invert(t, mod)
        assert t.fingerprint() == fp

    def test_delete_inverse_preserves_remaining_hard_timeout(self):
        t = FlowTable()
        t.apply_flow_mod(add_mod(Match(eth_dst="a"), hard_timeout=10.0), 0.0)
        mod = FlowMod(match=Match(eth_dst="a"), command=FlowModCommand.DELETE)
        pre = t.apply_flow_mod(mod, 4.0)
        inversion = invert(mod, pre, 1, 4.0)
        restore = inversion.messages[0]
        assert restore.hard_timeout == pytest.approx(6.0)

    def test_delete_inverse_carries_counter_records(self):
        t = FlowTable()
        t.apply_flow_mod(add_mod(Match(eth_dst="a")), 0.0)
        t.entries[0].packet_count = 7
        t.entries[0].byte_count = 700
        mod = FlowMod(match=Match(eth_dst="a"), command=FlowModCommand.DELETE)
        pre = t.apply_flow_mod(mod, 1.0)
        inversion = invert(mod, pre, dpid=5, now=1.0)
        assert len(inversion.counter_records) == 1
        record = inversion.counter_records[0]
        assert record.dpid == 5
        assert record.packet_count == 7
        assert record.byte_count == 700

    def test_delete_of_nothing_has_empty_inverse(self):
        mod = FlowMod(match=Match(eth_dst="ghost"), command=FlowModCommand.DELETE)
        inversion = invert(mod, [], 1, 0.0)
        assert inversion.messages == []
        assert inversion.counter_records == []


class TestInvertModify:
    def test_modify_then_inverse_restores_actions(self):
        t = FlowTable()
        t.apply_flow_mod(add_mod(Match(eth_dst="a"), actions=(Output(1),)), 0.0)
        mod = FlowMod(match=Match(eth_dst="a"), command=FlowModCommand.MODIFY,
                      actions=(Drop(),))
        apply_and_invert(t, mod)
        assert t.entries[0].actions == (Output(1),)

    def test_modify_as_add_inverse_removes_entry(self):
        t = FlowTable()
        mod = FlowMod(match=Match(eth_dst="a"), command=FlowModCommand.MODIFY,
                      priority=10, actions=(Drop(),))
        apply_and_invert(t, mod)
        assert len(t) == 0

    def test_modify_strict_inverse(self):
        t = FlowTable()
        t.apply_flow_mod(add_mod(Match(eth_dst="a"), priority=7,
                                 actions=(Output(2),)), 0.0)
        mod = FlowMod(match=Match(eth_dst="a"),
                      command=FlowModCommand.MODIFY_STRICT, priority=7,
                      actions=(Output(3),))
        apply_and_invert(t, mod)
        assert t.entries[0].actions == (Output(2),)


class TestErrors:
    def test_non_flowmod_not_invertible(self):
        with pytest.raises(TypeError):
            invert(PacketOut(), [], 1, 0.0)


class TestSequences:
    def test_transaction_of_mixed_ops_inverts_in_reverse_order(self):
        """A mini NetLog: log (mod, pre) pairs, undo them in reverse."""
        t = FlowTable()
        t.apply_flow_mod(add_mod(Match(eth_dst="keep")), 0.0)
        fp = t.fingerprint()
        log = []
        ops = [
            add_mod(Match(eth_dst="a"), priority=10),
            add_mod(Match(eth_dst="b"), priority=20),
            FlowMod(match=Match(eth_dst="keep"), command=FlowModCommand.MODIFY,
                    actions=(Drop(),)),
            FlowMod(match=Match(eth_dst="a"), command=FlowModCommand.DELETE),
        ]
        for mod in ops:
            pre = t.apply_flow_mod(mod, 0.0)
            log.append(invert(mod, pre, 1, 0.0))
        for inversion in reversed(log):
            for inverse in inversion.messages:
                t.apply_flow_mod(inverse, 0.0)
        assert t.fingerprint() == fp
